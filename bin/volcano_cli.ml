(* The volcano command-line interface: run and explain demo queries over a
   generated Wisconsin relation, serially or parallelized with exchange.

   Queries execute through the [Session] facade: a session owns the
   environment, the worker-pool scheduler, and the multi-query runtime;
   [--workers] sizes a private pool for the invocation.

   Examples:
     volcano list
     volcano explain parallel-join --degree 4
     volcano run aggregate --rows 50000
     volcano run parallel-sort --degree 3 --rows 100000 --workers 8
     volcano analyze bad-plan --degree 3
     volcano sim --packet-size 5 *)

module Plan = Volcano_plan.Plan
module Env = Volcano_plan.Env
module Compile = Volcano_plan.Compile
module Session = Volcano_plan.Session
module Parallel = Volcano_plan.Parallel
module Exchange = Volcano.Exchange
module Expr = Volcano_tuple.Expr
module Tuple = Volcano_tuple.Tuple
module Support = Volcano_tuple.Support
module W = Volcano_wisconsin.Wisconsin
module Clock = Volcano_util.Clock

type query = {
  name : string;
  describe : string;
  build : rows:int -> degree:int -> Plan.t;
}

let col = W.column

let filter_pred =
  Expr.Infix.( = ) (Expr.col (col "two")) (Expr.int 0)

let queries =
  [
    {
      name = "selection";
      describe = "50% selection (two = 0), serial scan";
      build =
        (fun ~rows ~degree:_ ->
          Plan.Filter
            { pred = filter_pred; mode = `Compiled; input = W.plan ~n:rows () });
    };
    {
      name = "aggregate";
      describe = "group by ten: count + sum(unique1), hash aggregation";
      build =
        (fun ~rows ~degree:_ ->
          Plan.Aggregate
            {
              algo = Plan.Hash_based;
              group_by = [ col "ten" ];
              aggs =
                [
                  Volcano_ops.Aggregate.Count;
                  Volcano_ops.Aggregate.Sum (Expr.col (col "unique1"));
                ];
              input = W.plan ~n:rows ();
            });
    };
    {
      name = "parallel-aggregate";
      describe = "the same aggregation, hash-partitioned across a process group";
      build =
        (fun ~rows ~degree ->
          Parallel.partitioned_aggregate ~degree ~algo:Plan.Hash_based
            ~group_by:[ col "ten" ]
            ~aggs:
              [
                Volcano_ops.Aggregate.Count;
                Volcano_ops.Aggregate.Sum (Expr.col (col "unique1"));
              ]
            (W.plan_slice ~n:rows ()));
    };
    {
      name = "join";
      describe = "self-equi-join on unique1 (hash), serial";
      build =
        (fun ~rows ~degree:_ ->
          Plan.Match
            {
              algo = Plan.Hash_based;
              kind = Volcano_ops.Match_op.Join;
              left_key = [ col "unique1" ];
              right_key = [ col "unique1" ];
              left = W.plan ~seed:1L ~n:rows ();
              right = W.plan ~seed:2L ~n:(rows / 4) ();
            });
    };
    {
      name = "parallel-join";
      describe = "GAMMA-style repartitioned parallel hash join";
      build =
        (fun ~rows ~degree ->
          Parallel.partitioned_match ~degree ~algo:Plan.Hash_based
            ~kind:Volcano_ops.Match_op.Join
            ~left_key:[ col "unique1" ]
            ~right_key:[ col "unique1" ]
            ~left:(W.plan_slice ~seed:1L ~n:rows ())
            ~right:(W.plan_slice ~seed:2L ~n:(rows / 4) ())
            ());
    };
    {
      name = "sort";
      describe = "external sort on unique1, serial";
      build =
        (fun ~rows ~degree:_ ->
          Plan.Sort { key = [ (col "unique1", Support.Asc) ]; input = W.plan ~n:rows () });
    };
    {
      name = "parallel-sort";
      describe = "merge network: sorted slices merged by producer";
      build =
        (fun ~rows ~degree ->
          Parallel.parallel_sort ~degree
            ~key:[ (col "unique1", Support.Asc) ]
            (W.plan_slice ~n:rows ()));
    };
    {
      name = "two-phase-aggregate";
      describe = "aggregation with local pre-aggregation before repartitioning";
      build =
        (fun ~rows ~degree ->
          Parallel.partitioned_aggregate_two_phase ~degree
            ~group_by:[ col "ten" ]
            ~aggs:
              [
                Volcano_ops.Aggregate.Count;
                Volcano_ops.Aggregate.Avg (Expr.col (col "unique1"));
              ]
            (W.plan_slice ~n:rows ()));
    };
    {
      name = "division";
      describe = "hash-division: students enrolled in every required course";
      build =
        (fun ~rows ~degree:_ ->
          let courses = 20 in
          let gen i = Tuple.of_ints [ i / courses; i mod courses ] in
          Plan.Division
            {
              algo = `Hash;
              quotient = [ 0 ];
              divisor_attrs = [ 1 ];
              divisor_key = [ 0 ];
              dividend =
                Plan.Filter
                  {
                    pred =
                      Expr.Infix.( <> )
                        (Expr.Mod (Expr.Infix.( + ) (Expr.col 0) (Expr.col 1), Expr.int 7))
                        (Expr.int 0);
                    mode = `Compiled;
                    input = Plan.Generate { arity = 2; count = rows; gen };
                  };
              divisor =
                (* the three required courses *)
                Plan.Generate
                  { arity = 1; count = 3; gen = (fun i -> Tuple.of_ints [ i + 1 ]) };
            });
    };
    {
      name = "bad-plan";
      describe =
        "deliberately malformed: bad partition column, unsorted merge, \
         flow-controlled merge network (demo for `analyze`)";
      build =
        (fun ~rows ~degree ->
          (* Three planted defects: the partition column 99 is out of range,
             the merge producers are not sorted on the merge key, and the
             flow-controlled merge network sits inside a parallel consumer
             group (the section 4.4 deadlock hazard). *)
          Plan.Exchange
            {
              cfg = Exchange.config ~degree ();
              input =
                Plan.Exchange_merge
                  {
                    cfg = Exchange.config ~degree ~flow_slack:(Some 2) ();
                    key = [ (col "unique1", Support.Asc) ];
                    input =
                      Plan.Exchange
                        {
                          cfg =
                            Exchange.config ~degree
                              ~partition:(Exchange.Hash_on [ 99 ]) ();
                          input = W.plan_slice ~n:rows ();
                        };
                  };
            });
    };
    {
      name = "pipeline";
      describe = "the section 4.3 eight-process pipeline (exchange x2)";
      build =
        (fun ~rows ~degree:_ ->
          let y =
            Plan.Exchange
              { cfg = Exchange.config ~degree:4 (); input = W.plan_slice ~n:rows () }
          in
          let c =
            Plan.Filter
              {
                pred = Expr.Infix.( = ) (Expr.col (col "ten_percent")) (Expr.int 0);
                mode = `Compiled;
                input = y;
              }
          in
          let b = Plan.Project_cols { cols = [ col "unique1"; col "four" ]; input = c } in
          Plan.Exchange { cfg = Exchange.config ~degree:3 (); input = b });
    };
  ]

let find_query name =
  match List.find_opt (fun q -> String.equal q.name name) queries with
  | Some q -> Ok q
  | None ->
      Error
        (Printf.sprintf "unknown query %S; try: %s" name
           (String.concat ", " (List.map (fun q -> q.name) queries)))

(* --- commands --- *)

let list_cmd () =
  List.iter (fun q -> Printf.printf "%-20s %s\n" q.name q.describe) queries;
  0

(* Catalog-only commands need no scheduler; the lazy [Env] never spins
   up the pool when all we do is pretty-print the plan. *)
let explain_cmd name rows degree =
  match find_query name with
  | Error e ->
      prerr_endline e;
      2
  | Ok q ->
      let env = Env.create () in
      print_string (Plan.explain env (q.build ~rows ~degree));
      0

let with_sess workers batch_size f =
  Session.with_session ?workers ?batch_size ~frames:2048 f

let analyze_cmd name rows degree strict workers flow_budget batch_size =
  match find_query name with
  | Error e ->
      prerr_endline e;
      2
  | Ok q ->
      let env = Env.create ~frames:2048 () in
      let plan = q.build ~rows ~degree in
      print_string (Plan.explain env plan);
      let diags = Compile.analyze ?workers ?flow_budget ?batch_size env plan in
      Format.printf "%a" Volcano_analysis.Diag.pp_report diags;
      if List.exists Volcano_analysis.Diag.is_error diags then 1
      else if strict && diags <> [] then 1
      else 0

let run_cmd name rows degree limit workers batch_size =
  match find_query name with
  | Error e ->
      prerr_endline e;
      2
  | Ok q -> (
      with_sess workers batch_size @@ fun s ->
      let plan = q.build ~rows ~degree in
      match Clock.time (fun () -> Session.exec s plan) with
      | exception Compile.Rejected errors ->
          prerr_endline "plan rejected by the static analyzer:";
          List.iter
            (fun d -> prerr_endline ("  " ^ Volcano_analysis.Diag.to_string d))
            errors;
          1
      | result, elapsed ->
          Printf.printf "%d rows in %.3f s\n" (List.length result) elapsed;
          List.iteri
            (fun i t -> if i < limit then print_endline (Tuple.to_string t))
            result;
          if List.length result > limit then
            Printf.printf "... (%d more rows; use --limit)\n"
              (List.length result - limit);
          0)

let profile_cmd name rows degree trace json workers batch_size =
  match find_query name with
  | Error e ->
      prerr_endline e;
      2
  | Ok q -> (
      with_sess workers batch_size @@ fun s ->
      let plan = q.build ~rows ~degree in
      match Session.profile s plan with
      | exception Compile.Rejected errors ->
          prerr_endline "plan rejected by the static analyzer:";
          List.iter
            (fun d -> prerr_endline ("  " ^ Volcano_analysis.Diag.to_string d))
            errors;
          1
      | report ->
          print_string (Volcano_plan.Profile.render report);
          Option.iter
            (fun path ->
              Volcano_plan.Profile.write_trace report ~path;
              Printf.printf "\ntrace written to %s (load in chrome://tracing \
                             or Perfetto)\n"
                path)
            trace;
          Option.iter
            (fun path ->
              Volcano_plan.Profile.write_json report ~path;
              Printf.printf "report written to %s\n" path)
            json;
          0)

let sim_cmd packet_size records =
  let r = Volcano_sim.Calibration.fig2a ~packet_size ~records () in
  Printf.printf
    "simulated 12-CPU Sequent, %d records, packet size %d:\n\
     elapsed %.2f s, %d packets, peak queue depth %d\n"
    records packet_size r.Volcano_sim.Sim.elapsed
    r.Volcano_sim.Sim.packets_total r.Volcano_sim.Sim.max_queue_depth;
  0

(* --- cmdliner plumbing --- *)

open Cmdliner

let rows_arg =
  Arg.(value & opt int 20_000 & info [ "rows"; "n" ] ~docv:"N" ~doc:"Relation size.")

let degree_arg =
  Arg.(value & opt int 4 & info [ "degree"; "d" ] ~docv:"D" ~doc:"Parallel degree.")

let limit_arg =
  Arg.(value & opt int 10 & info [ "limit" ] ~docv:"K" ~doc:"Rows to print.")

let workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ] ~docv:"W"
        ~doc:
          "Size of the session's private worker pool (default: the shared \
           process-wide pool, sized to the machine).")

let batch_size_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "batch-size" ] ~docv:"B"
        ~doc:
          "Records per fused batch on the vectorized execution path: fusible \
           scan chains compile to one tight loop yielding batches of this \
           many records.  0 compiles everything record-at-a-time.  Default: \
           \\$(b,VOLCANO_BATCH_SIZE) when set, else 64.")

let name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY")

let list_term = Term.(const list_cmd $ const ())

let explain_term = Term.(const explain_cmd $ name_arg $ rows_arg $ degree_arg)

let analyze_term =
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Exit non-zero when $(i,any) diagnostic is emitted, warnings \
             included (the default exits non-zero only on errors).  For \
             lint gates in CI.")
  in
  let workers =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"W"
          ~doc:
            "Assume a worker pool of this size for the scheduler-placement \
             advisory (VL501); 0 disables it.  Default: the pool this \
             process would run the query on.")
  in
  let flow_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "flow-budget" ] ~docv:"RECORDS"
          ~doc:
            "Budget, in records, for the flow-control memory bound (VL502). \
             Default 1048576.")
  in
  Term.(
    const analyze_cmd $ name_arg $ rows_arg $ degree_arg $ strict $ workers
    $ flow_budget $ batch_size_arg)

let run_term =
  Term.(
    const run_cmd $ name_arg $ rows_arg $ degree_arg $ limit_arg $ workers_arg
    $ batch_size_arg)

let profile_term =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a Chrome trace_event JSON of the operator spans.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the machine-readable profile report.")
  in
  Term.(
    const profile_cmd $ name_arg $ rows_arg $ degree_arg $ trace $ json
    $ workers_arg $ batch_size_arg)

let sim_term =
  let packet =
    Arg.(value & opt int 83 & info [ "packet-size" ] ~docv:"P" ~doc:"Records per packet.")
  in
  let records =
    Arg.(value & opt int 100_000 & info [ "records" ] ~docv:"N" ~doc:"Records.")
  in
  Term.(const sim_cmd $ packet $ records)

let cmds =
  [
    Cmd.v (Cmd.info "list" ~doc:"List the demo queries.") list_term;
    Cmd.v (Cmd.info "explain" ~doc:"Print a query's operator tree.") explain_term;
    Cmd.v
      (Cmd.info "analyze"
         ~doc:
           "Static analysis: print the analyzer's diagnostics for a query's \
            plan (exit 1 if it would be rejected; with --strict, exit 1 on \
            any diagnostic at all).")
      analyze_term;
    Cmd.v (Cmd.info "run" ~doc:"Execute a demo query.") run_term;
    Cmd.v
      (Cmd.info "profile"
         ~doc:
           "Execute a demo query with observability on and print the plan \
            tree annotated with per-node rows, calls, time, and exchange \
            packet/flow statistics (EXPLAIN ANALYZE).")
      profile_term;
    Cmd.v
      (Cmd.info "sim" ~doc:"Run the Figure-2a topology on the simulated Sequent.")
      sim_term;
  ]

let () =
  let info =
    Cmd.info "volcano" ~version:"1.0.0"
      ~doc:"Volcano query processing system — exchange-operator reproduction"
  in
  exit (Cmd.eval' (Cmd.group info cmds))
