(* The volcano command-line interface: run and explain demo queries over a
   generated Wisconsin relation, serially or parallelized with exchange.

   Queries execute through the [Session] facade: a session owns the
   environment, the worker-pool scheduler, and the multi-query runtime;
   [--workers] sizes a private pool for the invocation.

   Examples:
     volcano list
     volcano explain parallel-join --degree 4
     volcano run aggregate --rows 50000
     volcano run parallel-sort --degree 3 --rows 100000 --workers 8
     volcano analyze bad-plan --degree 3
     volcano sim --packet-size 5 *)

module Plan = Volcano_plan.Plan
module Env = Volcano_plan.Env
module Compile = Volcano_plan.Compile
module Session = Volcano_plan.Session
module Parallel = Volcano_plan.Parallel
module Remote = Volcano_plan.Remote
module Partition = Volcano_plan.Partition
module Shard = Volcano_storage.Shard
module Heap_file = Volcano_storage.Heap_file
module Serial = Volcano_tuple.Serial
module Value = Volcano_tuple.Value
module Exchange = Volcano.Exchange
module Expr = Volcano_tuple.Expr
module Tuple = Volcano_tuple.Tuple
module Support = Volcano_tuple.Support
module W = Volcano_wisconsin.Wisconsin
module Sql = Volcano_sql.Sql
module Clock = Volcano_util.Clock
module Serve = Volcano_net.Serve
module Obs = Volcano_obs.Obs

type query = {
  name : string;
  describe : string;
  build : rows:int -> degree:int -> Plan.t;
}

let col = W.column

let filter_pred =
  Expr.Infix.( = ) (Expr.col (col "two")) (Expr.int 0)

let queries =
  [
    {
      name = "selection";
      describe = "50% selection (two = 0), serial scan";
      build =
        (fun ~rows ~degree:_ ->
          Plan.Filter
            { pred = filter_pred; mode = `Compiled; input = W.plan ~n:rows () });
    };
    {
      name = "aggregate";
      describe = "group by ten: count + sum(unique1), hash aggregation";
      build =
        (fun ~rows ~degree:_ ->
          Plan.Aggregate
            {
              algo = Plan.Hash_based;
              group_by = [ col "ten" ];
              aggs =
                [
                  Volcano_ops.Aggregate.Count;
                  Volcano_ops.Aggregate.Sum (Expr.col (col "unique1"));
                ];
              input = W.plan ~n:rows ();
            });
    };
    {
      name = "parallel-aggregate";
      describe = "the same aggregation, hash-partitioned across a process group";
      build =
        (fun ~rows ~degree ->
          Parallel.partitioned_aggregate ~degree ~algo:Plan.Hash_based
            ~group_by:[ col "ten" ]
            ~aggs:
              [
                Volcano_ops.Aggregate.Count;
                Volcano_ops.Aggregate.Sum (Expr.col (col "unique1"));
              ]
            (W.plan_slice ~n:rows ()));
    };
    {
      name = "join";
      describe = "self-equi-join on unique1 (hash), serial";
      build =
        (fun ~rows ~degree:_ ->
          Plan.Match
            {
              algo = Plan.Hash_based;
              kind = Volcano_ops.Match_op.Join;
              left_key = [ col "unique1" ];
              right_key = [ col "unique1" ];
              left = W.plan ~seed:1L ~n:rows ();
              right = W.plan ~seed:2L ~n:(rows / 4) ();
            });
    };
    {
      name = "parallel-join";
      describe = "GAMMA-style repartitioned parallel hash join";
      build =
        (fun ~rows ~degree ->
          Parallel.partitioned_match ~degree ~algo:Plan.Hash_based
            ~kind:Volcano_ops.Match_op.Join
            ~left_key:[ col "unique1" ]
            ~right_key:[ col "unique1" ]
            ~left:(W.plan_slice ~seed:1L ~n:rows ())
            ~right:(W.plan_slice ~seed:2L ~n:(rows / 4) ())
            ());
    };
    {
      name = "sort";
      describe = "external sort on unique1, serial";
      build =
        (fun ~rows ~degree:_ ->
          Plan.Sort { key = [ (col "unique1", Support.Asc) ]; input = W.plan ~n:rows () });
    };
    {
      name = "parallel-sort";
      describe = "merge network: sorted slices merged by producer";
      build =
        (fun ~rows ~degree ->
          Parallel.parallel_sort ~degree
            ~key:[ (col "unique1", Support.Asc) ]
            (W.plan_slice ~n:rows ()));
    };
    {
      name = "two-phase-aggregate";
      describe = "aggregation with local pre-aggregation before repartitioning";
      build =
        (fun ~rows ~degree ->
          Parallel.partitioned_aggregate_two_phase ~degree
            ~group_by:[ col "ten" ]
            ~aggs:
              [
                Volcano_ops.Aggregate.Count;
                Volcano_ops.Aggregate.Avg (Expr.col (col "unique1"));
              ]
            (W.plan_slice ~n:rows ()));
    };
    {
      name = "division";
      describe = "hash-division: students enrolled in every required course";
      build =
        (fun ~rows ~degree:_ ->
          let courses = 20 in
          let gen i = Tuple.of_ints [ i / courses; i mod courses ] in
          Plan.Division
            {
              algo = `Hash;
              quotient = [ 0 ];
              divisor_attrs = [ 1 ];
              divisor_key = [ 0 ];
              dividend =
                Plan.Filter
                  {
                    pred =
                      Expr.Infix.( <> )
                        (Expr.Mod (Expr.Infix.( + ) (Expr.col 0) (Expr.col 1), Expr.int 7))
                        (Expr.int 0);
                    mode = `Compiled;
                    input = Plan.Generate { arity = 2; count = rows; gen };
                  };
              divisor =
                (* the three required courses *)
                Plan.Generate
                  { arity = 1; count = 3; gen = (fun i -> Tuple.of_ints [ i + 1 ]) };
            });
    };
    {
      name = "bad-plan";
      describe =
        "deliberately malformed: bad partition column, unsorted merge, \
         flow-controlled merge network (demo for `analyze`)";
      build =
        (fun ~rows ~degree ->
          (* Three planted defects: the partition column 99 is out of range,
             the merge producers are not sorted on the merge key, and the
             flow-controlled merge network sits inside a parallel consumer
             group (the section 4.4 deadlock hazard). *)
          Plan.Exchange
            {
              cfg = Exchange.config ~degree ();
              input =
                Plan.Exchange_merge
                  {
                    cfg = Exchange.config ~degree ~flow_slack:(Some 2) ();
                    key = [ (col "unique1", Support.Asc) ];
                    input =
                      Plan.Exchange
                        {
                          cfg =
                            Exchange.config ~degree
                              ~partition:(Exchange.Hash_on [ 99 ]) ();
                          input = W.plan_slice ~n:rows ();
                        };
                  };
            });
    };
    {
      name = "pipeline";
      describe = "the section 4.3 eight-process pipeline (exchange x2)";
      build =
        (fun ~rows ~degree:_ ->
          let y =
            Plan.Exchange
              { cfg = Exchange.config ~degree:4 (); input = W.plan_slice ~n:rows () }
          in
          let c =
            Plan.Filter
              {
                pred = Expr.Infix.( = ) (Expr.col (col "ten_percent")) (Expr.int 0);
                mode = `Compiled;
                input = y;
              }
          in
          let b = Plan.Project_cols { cols = [ col "unique1"; col "four" ]; input = c } in
          Plan.Exchange { cfg = Exchange.config ~degree:3 (); input = b });
    };
    {
      name = "remote-scan";
      describe = "Wisconsin scan sharded across worker processes (remote exchange)";
      build =
        (fun ~rows ~degree ->
          Plan.Remote
            {
              cfg = Exchange.config ~degree ~flow_slack:(Some 4) ();
              workers = degree;
              task = Printf.sprintf "wisconsin:%d" rows;
              input = W.plan_slice ~n:rows ();
            });
    };
    {
      name = "remote-aggregate";
      describe = "group by ten over a network-distributed scan";
      build =
        (fun ~rows ~degree ->
          Plan.Aggregate
            {
              algo = Plan.Hash_based;
              group_by = [ col "ten" ];
              aggs =
                [
                  Volcano_ops.Aggregate.Count;
                  Volcano_ops.Aggregate.Sum (Expr.col (col "unique1"));
                ];
              input =
                Plan.Remote
                  {
                    cfg = Exchange.config ~degree ~flow_slack:(Some 4) ();
                    workers = degree;
                    task = Printf.sprintf "wisconsin:%d" rows;
                    input = W.plan_slice ~n:rows ();
                  };
            });
    };
  ]

let find_query name =
  match List.find_opt (fun q -> String.equal q.name name) queries with
  | Some q -> Ok q
  | None ->
      Error
        (Printf.sprintf "unknown query %S; try: %s" name
           (String.concat ", " (List.map (fun q -> q.name) queries)))

(* --- the shared task vocabulary -------------------------------------- *)

(* Tasks name plans by value, so one binary plays all three roles with
   one vocabulary: the serve daemon executes them, remote exchange
   workers rebuild and shard them, and clients (or [Plan.Remote] nodes)
   mint them.

     wisconsin:<rows>[:<seed>]       the sliceable Wisconsin relation
     demo:<name>:<rows>:<degree>     any demo query from `list` *)
let parse_task task =
  let int what s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | _ -> Error (Printf.sprintf "task %S: bad %s %S" task what s)
  in
  let ( let* ) = Result.bind in
  match String.split_on_char ':' task with
  | [ "wisconsin"; rows ] ->
      let* n = int "row count" rows in
      Ok (W.plan_slice ~n ())
  | [ "wisconsin"; rows; seed ] ->
      let* n = int "row count" rows in
      let* seed = int "seed" seed in
      Ok (W.plan_slice ~seed:(Int64.of_int seed) ~n ())
  | [ "demo"; name; rows; degree ] ->
      let* q = find_query name in
      let* rows = int "row count" rows in
      let* degree = int "degree" degree in
      Ok (q.build ~rows ~degree)
  | _ ->
      Error
        (Printf.sprintf
           "unresolvable task %S (expected wisconsin:<rows>[:<seed>] or \
            demo:<name>:<rows>:<degree>)"
           task)

(* --- SQL: the canonical request shape -------------------------------- *)

(* The SQL frontend is the one canonical request shape: `query` and the
   serve daemon both accept a statement as text and hand it to the
   optimizer.  Task strings above stay accepted everywhere — the
   net-worker slicing protocol depends on them — but every task that can
   be said in SQL is a thin alias: [sql_of_task] surfaces the equivalent
   statement, which is what actually runs. *)
let () = Sql.install ()

let looks_like_sql text =
  let t = String.trim text in
  String.length t > 6
  && String.lowercase_ascii (String.sub t 0 6) = "select"
  && (* word boundary: don't mistake the demo named "selection" *)
  (match t.[6] with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> false
  | _ -> true)

let sql_of_task task =
  let spf = Printf.sprintf in
  match String.split_on_char ':' task with
  | [ "wisconsin"; rows ] ->
      Option.map (spf "SELECT * FROM wisconsin(%d)") (int_of_string_opt rows)
  | [ "wisconsin"; rows; seed ] -> (
      match (int_of_string_opt rows, int_of_string_opt seed) with
      | Some n, Some s -> Some (spf "SELECT * FROM wisconsin(%d, %d)" n s)
      | _ -> None)
  | [ "demo"; name; rows; _degree ] -> (
      match int_of_string_opt rows with
      | None -> None
      | Some n -> (
          (* The degree is absent on purpose: the optimizer owns the
             parallelism decision for SQL requests. *)
          match name with
          | "selection" ->
              Some (spf "SELECT * FROM wisconsin(%d) WHERE two = 0" n)
          | "aggregate" | "parallel-aggregate" ->
              Some
                (spf
                   "SELECT ten, COUNT(*), SUM(unique1) FROM wisconsin(%d) \
                    GROUP BY ten"
                   n)
          | "two-phase-aggregate" ->
              Some
                (spf
                   "SELECT ten, COUNT(*), AVG(unique1) FROM wisconsin(%d) \
                    GROUP BY ten"
                   n)
          | "join" | "parallel-join" ->
              Some
                (spf
                   "SELECT * FROM wisconsin(%d, 1) AS a JOIN wisconsin(%d, \
                    2) AS b ON a.unique1 = b.unique1"
                   n (n / 4))
          | "sort" | "parallel-sort" ->
              Some (spf "SELECT * FROM wisconsin(%d) ORDER BY unique1" n)
          | "pipeline" ->
              Some
                (spf
                   "SELECT unique1, four FROM wisconsin(%d) WHERE \
                    ten_percent = 0"
                   n)
          | _ -> None))
  | _ -> None

(* --- partitioned stored tables: the [stored:] task vocabulary ------- *)

(* [create-table] partitions a generated Wisconsin relation and (with
   --remote-scan) reads it back through one worker process per site;
   the task string [stored:<rows>:<parts>:<kind>:<column>] lets each
   worker rebuild exactly the partitions its site owns from the same
   deterministic generator, identity placement (partition k at site k). *)

let stored_table = "wisc"

let stored_spec ~rows ~parts ~kind ~column =
  match W.column column with
  | exception Not_found ->
      Error (Printf.sprintf "unknown Wisconsin column %S" column)
  | c -> (
      match kind with
      | "hash" -> Ok (Partition.hash_spec [ c ])
      | "range" ->
          (* even split of the dense [0, rows) key space — meaningful on
             a permutation column like unique1/unique2 *)
          Ok
            (Partition.range_spec ~col:c
               ~bounds:
                 (Array.init (parts - 1) (fun k ->
                      Value.Int (((k + 1) * rows / parts) - 1))))
      | _ ->
          Error
            (Printf.sprintf "unknown partition kind %S (hash or range)" kind))

let parse_stored_task task =
  match String.split_on_char ':' task with
  | [ "stored"; rows; parts; kind; column ] -> (
      match (int_of_string_opt rows, int_of_string_opt parts) with
      | Some rows, Some parts when rows > 0 && parts > 0 ->
          Result.map
            (fun spec -> (rows, parts, spec))
            (stored_spec ~rows ~parts ~kind ~column)
      | _ -> Error (Printf.sprintf "task %S: bad counts" task))
  | _ ->
      Error
        (Printf.sprintf
           "unresolvable stored task %S (expected \
            stored:<rows>:<parts>:<hash|range>:<column>)"
           task)

(* Every session this binary opens can compile [Plan.Remote]: the
   launcher re-invokes this same executable in net-worker mode, so
   parent and workers share the task vocabulary above. *)
let register_launcher ?lane ?obs env =
  Env.set_remote_launcher env (fun ~faults ~repartition ~workers ~task
                                   ~packet_size ->
      (Volcano_net.Launcher.launch ~faults ?lane ?obs
         ?repartition:
           (Option.map
              (fun (spec, dests) ->
                Volcano_net.Repart.of_partition_spec spec ~dests)
              repartition)
         ~command:(fun ~socket -> [| Sys.executable_name; "net-worker"; socket |])
         ~workers ~task ~packet_size ())
        .sources)

(* --- commands --- *)

let list_cmd () =
  List.iter (fun q -> Printf.printf "%-20s %s\n" q.name q.describe) queries;
  0

(* Catalog-only commands need no scheduler; the lazy [Env] never spins
   up the pool when all we do is pretty-print the plan. *)
let strict_gate strict env ?workers ?batch_size plan =
  if not strict then 0
  else
    let diags = Compile.analyze ?workers ?batch_size env plan in
    Format.printf "%a" Volcano_analysis.Diag.pp_report diags;
    if diags <> [] then 1 else 0

let explain_cmd name rows degree strict workers batch_size =
  if looks_like_sql name then (
    let env = Env.create ~frames:2048 ?batch_size () in
    match Sql.plan ?workers env name with
    | exception Sql.Error m ->
        prerr_endline m;
        2
    | choice ->
        print_string (Volcano_sql.Optimizer.render env choice);
        (* The optimizer only emits analyzer-clean plans, so --strict
           re-checking is a tautology here by design; it still runs so
           the gate means the same thing for SQL and demo plans. *)
        strict_gate strict env ?workers ?batch_size
          choice.Volcano_sql.Optimizer.plan)
  else
    match find_query name with
    | Error e ->
        prerr_endline e;
        2
    | Ok q ->
        let env = Env.create ~frames:2048 () in
        let plan = q.build ~rows ~degree in
        print_string (Plan.explain env plan);
        strict_gate strict env ?workers ?batch_size plan

let with_sess workers batch_size f =
  Session.with_session ?workers ?batch_size ~frames:2048 (fun s ->
      register_launcher (Session.env s);
      f s)

let analyze_cmd name rows degree strict workers flow_budget batch_size =
  match find_query name with
  | Error e ->
      prerr_endline e;
      2
  | Ok q ->
      let env = Env.create ~frames:2048 () in
      let plan = q.build ~rows ~degree in
      print_string (Plan.explain env plan);
      let diags = Compile.analyze ?workers ?flow_budget ?batch_size env plan in
      Format.printf "%a" Volcano_analysis.Diag.pp_report diags;
      if List.exists Volcano_analysis.Diag.is_error diags then 1
      else if strict && diags <> [] then 1
      else 0

let run_cmd name rows degree limit workers batch_size =
  match find_query name with
  | Error e ->
      prerr_endline e;
      2
  | Ok q -> (
      with_sess workers batch_size @@ fun s ->
      let plan = q.build ~rows ~degree in
      match Clock.time (fun () -> Session.exec s (`Plan plan)) with
      | exception Compile.Rejected errors ->
          prerr_endline "plan rejected by the static analyzer:";
          List.iter
            (fun d -> prerr_endline ("  " ^ Volcano_analysis.Diag.to_string d))
            errors;
          1
      | result, elapsed ->
          Printf.printf "%d rows in %.3f s\n" (List.length result) elapsed;
          List.iteri
            (fun i t -> if i < limit then print_endline (Tuple.to_string t))
            result;
          if List.length result > limit then
            Printf.printf "... (%d more rows; use --limit)\n"
              (List.length result - limit);
          0)

let profile_cmd name rows degree trace json workers batch_size =
  match find_query name with
  | Error e ->
      prerr_endline e;
      2
  | Ok q -> (
      with_sess workers batch_size @@ fun s ->
      let plan = q.build ~rows ~degree in
      match Session.profile s (`Plan plan) with
      | exception Compile.Rejected errors ->
          prerr_endline "plan rejected by the static analyzer:";
          List.iter
            (fun d -> prerr_endline ("  " ^ Volcano_analysis.Diag.to_string d))
            errors;
          1
      | report ->
          print_string (Volcano_plan.Profile.render report);
          Option.iter
            (fun path ->
              Volcano_plan.Profile.write_trace report ~path;
              Printf.printf "\ntrace written to %s (load in chrome://tracing \
                             or Perfetto)\n"
                path)
            trace;
          Option.iter
            (fun path ->
              Volcano_plan.Profile.write_json report ~path;
              Printf.printf "report written to %s\n" path)
            json;
          0)

let sim_cmd packet_size records =
  let r = Volcano_sim.Calibration.fig2a ~packet_size ~records () in
  Printf.printf
    "simulated 12-CPU Sequent, %d records, packet size %d:\n\
     elapsed %.2f s, %d packets, peak queue depth %d\n"
    records packet_size r.Volcano_sim.Sim.elapsed
    r.Volcano_sim.Sim.packets_total r.Volcano_sim.Sim.max_queue_depth;
  0

(* --- the network plane: worker mode, serve daemon, client ----------- *)

(* Worker-process main for remote exchange: spawned by the launcher
   registered above, never by a user.  [Worker.run] owns the protocol
   and never raises; a bad task surfaces as an [Err] frame. *)
let net_worker_cmd socket =
  Volcano_net.Worker.run ~socket ~resolve:(fun ~task ~shard ~shards ->
      if String.length task >= 7 && String.sub task 0 7 = "stored:" then (
        (* partitioned stored table: this worker plays site [shard] —
           materialize the partitions that site owns, then pull the
           sliced scan against the site-local catalog *)
        match parse_stored_task task with
        | Error e -> failwith e
        | Ok (rows, parts, spec) ->
            if parts <> shards then
              failwith
                (Printf.sprintf
                   "task has %d partitions but the edge runs %d shards" parts
                   shards);
            let env = Env.create ~frames:2048 () in
            ignore
              (Partition.load_site env ~table:stored_table ~schema:W.schema
                 ~spec ~parts ~site:shard ~count:rows
                 ~gen:(W.generator ~n:rows ()) ());
            Remote.shard_pull env ~shard ~shards
              (Plan.Scan_table_slice stored_table))
      else
        match parse_task task with
        | Error e -> failwith e
        | Ok plan ->
            let env = Env.create ~frames:2048 () in
            register_launcher env;
            Remote.shard_pull env ~shard ~shards plan);
  0

(* Partition a generated relation into per-site heap files, print the
   placement the catalog recorded, and optionally read the table back
   through one real worker process per site. *)
let create_table_cmd rows parts by remote_scan tcp =
  let kind, column =
    match String.index_opt by ':' with
    | Some i ->
        ( String.sub by 0 i,
          String.sub by (i + 1) (String.length by - i - 1) )
    | None -> (by, "unique1")
  in
  match stored_spec ~rows ~parts ~kind ~column with
  | Error e ->
      prerr_endline e;
      2
  | Ok spec -> (
      let env = Env.create ~frames:2048 () in
      let file = Env.create_table env ~name:stored_table ~schema:W.schema in
      let gen = W.generator ~n:rows () in
      for i = 0 to rows - 1 do
        ignore (Heap_file.insert file (Bytes.to_string (Serial.encode (gen i))))
      done;
      let counts = Partition.split env ~table:stored_table ~spec ~parts () in
      Printf.printf "table %s: %d rows in %d partitions by %s:%s\n"
        stored_table rows parts kind column;
      Array.iteri
        (fun part n ->
          Printf.printf "  %-12s site %d  %6d rows\n"
            (Shard.partition_name ~table:stored_table ~part)
            (Option.value ~default:(-1)
               (Shard.site_of (Env.catalog env) ~table:stored_table ~part))
            n)
        counts;
      if not remote_scan then 0
      else
        let obs = Obs.create () in
        register_launcher ?lane:(if tcp then Some `Tcp else None) ~obs env;
        let task =
          Printf.sprintf "stored:%d:%d:%s:%s" rows parts kind column
        in
        let plan =
          Plan.Remote
            {
              cfg = Exchange.config ~degree:parts ();
              workers = parts;
              task;
              input = Plan.Scan_table_slice stored_table;
            }
        in
        match
          Clock.time (fun () ->
              Volcano.Iterator.to_list (Compile.compile env plan))
        with
        | exception Exchange.Query_failed { site; origin } ->
            Printf.eprintf "remote scan failed at %s: %s\n" site
              (Printexc.to_string origin);
            1
        | result, elapsed ->
            Printf.printf
              "remote scan over %d %s site(s): %d rows in %.3f s\n" parts
              (if tcp then "TCP" else "Unix-socket")
              (List.length result) elapsed;
            for site = 0 to parts - 1 do
              Printf.printf "  site %d shipped %6d rows, %8d bytes\n" site
                (Obs.Counter.value
                   (Obs.counter obs (Printf.sprintf "net.site%d.rows" site)))
                (Obs.Counter.value
                   (Obs.counter obs (Printf.sprintf "net.site%d.bytes" site)))
            done;
            if List.length result = rows then 0
            else (
              Printf.eprintf "row count mismatch: expected %d\n" rows;
              1))

let serve_cmd socket workers batch_size max_concurrent =
  Session.with_session ?workers ?batch_size ?max_concurrent ~frames:2048
  @@ fun s ->
  register_launcher (Session.env s);
  (* A request is SQL text, a task with a SQL spelling (translated, and
     the canonical spelling logged), or a plan-only task. *)
  let handle task =
    let input =
      if looks_like_sql task then Ok (`Sql task)
      else
        match sql_of_task task with
        | Some sql ->
            Printf.printf "task %s == %s\n%!" task sql;
            Ok (`Sql sql)
        | None -> Result.map (fun p -> `Plan p) (parse_task task)
    in
    match input with
    | Error e -> Error ("task", e)
    | Ok input -> (
        match Session.exec s input with
        | rows -> Ok rows
        | exception Sql.Error m -> Error ("sql", m)
        | exception Exchange.Query_failed { site; origin } ->
            Error (site, Printexc.to_string origin)
        | exception Compile.Rejected errors ->
            Error
              ( "planlint",
                String.concat "; "
                  (List.map Volcano_analysis.Diag.to_string errors) ))
  in
  let obs = Obs.create () in
  let server = Serve.Server.start ~obs ~socket ~handle () in
  Printf.printf "serving on %s (shut down with `volcano shutdown`)\n%!" socket;
  Serve.Server.wait server;
  Printf.printf "served %d request(s), %d error(s)\n"
    (Serve.Server.requests server)
    (Serve.Server.errors server);
  0

let with_client socket f =
  let c = Serve.Client.connect ~socket in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)

(* SIGPIPE is ignored for the socket's sake, so `query ... | head`
   surfaces as Sys_error on stdout — the consumer closed; done. *)
let print_rows ?elapsed rows limit =
  try
    (match elapsed with
    | Some t -> Printf.printf "%d rows in %.3f s\n" (List.length rows) t
    | None -> Printf.printf "%d rows\n" (List.length rows));
    List.iteri
      (fun i t -> if i < limit then print_endline (Tuple.to_string t))
      rows;
    if List.length rows > limit then
      Printf.printf "... (%d more rows; use --limit)\n"
        (List.length rows - limit)
  with Sys_error _ -> (
    (* Point the dirty stdout buffer at /dev/null so the at_exit
       flush cannot raise a second time. *)
    try
      let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      Unix.dup2 null Unix.stdout;
      Unix.close null;
      flush stdout
    with _ -> ())

(* One request shape, two transports: by default the statement runs
   in-process through the Session front door; --socket hands the same
   text to a serve daemon.  Task strings that have a SQL spelling are
   translated first (and the spelling printed), so the SQL text is what
   actually executes. *)
let query_cmd socket request limit workers batch_size =
  let translated =
    if looks_like_sql request then Some request
    else
      match sql_of_task request with
      | Some sql ->
          Printf.printf "-- %s is shorthand for:\n--   %s\n" request sql;
          Some sql
      | None -> None
  in
  match socket with
  | Some socket -> (
      (* The daemon performs the same task-to-SQL translation, so send
         the request verbatim. *)
      with_client socket @@ fun c ->
      match Serve.Client.query c request with
      | Ok rows ->
          print_rows rows limit;
          0
      | Error (site, message) ->
          Printf.eprintf "query failed at %s: %s\n" site message;
          1)
  | None -> (
      let input =
        match translated with
        | Some sql -> Ok (`Sql sql)
        | None -> Result.map (fun p -> `Plan p) (parse_task request)
      in
      match input with
      | Error e ->
          prerr_endline e;
          2
      | Ok input -> (
          with_sess workers batch_size @@ fun s ->
          match Clock.time (fun () -> Session.exec s input) with
          | exception Sql.Error m ->
              prerr_endline m;
              2
          | exception Compile.Rejected errors ->
              prerr_endline "plan rejected by the static analyzer:";
              List.iter
                (fun d ->
                  prerr_endline ("  " ^ Volcano_analysis.Diag.to_string d))
                errors;
              1
          | exception Exchange.Query_failed { site; origin } ->
              Printf.eprintf "query failed at %s: %s\n" site
                (Printexc.to_string origin);
              1
          | rows, elapsed ->
              print_rows ~elapsed rows limit;
              0))

let shutdown_cmd socket =
  with_client socket @@ fun c ->
  Serve.Client.shutdown_server c;
  0

(* End-to-end smoke for the serving plane: spawn the daemon as a real
   child process, drive it with concurrent clients, verify the row
   counts, shut it down, and insist on a clean exit.  Wired into the
   @serve-smoke alias. *)
let serve_smoke_cmd clients requests rows =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "volcano-smoke-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink socket with _ -> ());
  let argv = [| Sys.executable_name; "serve"; "--socket"; socket |] in
  let pid =
    Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr
  in
  let finally () =
    (try Unix.kill pid Sys.sigkill with _ -> ());
    (try ignore (Unix.waitpid [] pid) with _ -> ());
    try Unix.unlink socket with _ -> ()
  in
  let rec await_socket tries =
    if tries = 0 then failwith "serve daemon never bound its socket"
    else if not (Sys.file_exists socket) then begin
      Unix.sleepf 0.05;
      await_socket (tries - 1)
    end
  in
  match
    await_socket 200;
    let failures = Atomic.make 0 in
    let client i =
      with_client socket @@ fun c ->
      for r = 0 to requests - 1 do
        let n = rows + ((i + r) mod 7) in
        match Serve.Client.query c (Printf.sprintf "wisconsin:%d" n) with
        | Ok result when List.length result = n -> ()
        | Ok result ->
            Printf.eprintf "client %d: got %d rows, wanted %d\n" i
              (List.length result) n;
            Atomic.incr failures
        | Error (site, message) ->
            Printf.eprintf "client %d: failed at %s: %s\n" i site message;
            Atomic.incr failures
      done
    in
    let threads =
      List.init clients (fun i -> Thread.create (fun () -> client i) ())
    in
    List.iter Thread.join threads;
    (* One deliberately bad task must come back as an error, not a hang
       or a dropped connection. *)
    (with_client socket @@ fun c ->
     match Serve.Client.query c "no-such-task" with
     | Error _ -> ()
     | Ok _ ->
         prerr_endline "bad task unexpectedly succeeded";
         Atomic.incr failures);
    (with_client socket @@ fun c -> Serve.Client.shutdown_server c);
    let _, status = Unix.waitpid [] pid in
    (Atomic.get failures, status)
  with
  | exception exn ->
      finally ();
      prerr_endline ("serve smoke failed: " ^ Printexc.to_string exn);
      1
  | 0, Unix.WEXITED 0 ->
      (try Unix.unlink socket with _ -> ());
      Printf.printf "serve smoke: %d clients x %d requests ok, clean \
                     shutdown\n"
        clients requests;
      0
  | failures, status ->
      finally ();
      Printf.eprintf "serve smoke: %d failed request(s), daemon %s\n" failures
        (match status with
        | Unix.WEXITED c -> Printf.sprintf "exited %d" c
        | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
        | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s);
      1

(* --- cmdliner plumbing --- *)

open Cmdliner

let rows_arg =
  Arg.(value & opt int 20_000 & info [ "rows"; "n" ] ~docv:"N" ~doc:"Relation size.")

let degree_arg =
  Arg.(value & opt int 4 & info [ "degree"; "d" ] ~docv:"D" ~doc:"Parallel degree.")

let limit_arg =
  Arg.(value & opt int 10 & info [ "limit" ] ~docv:"K" ~doc:"Rows to print.")

let workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ] ~docv:"W"
        ~doc:
          "Size of the session's private worker pool (default: the shared \
           process-wide pool, sized to the machine).")

let batch_size_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "batch-size" ] ~docv:"B"
        ~doc:
          "Records per fused batch on the vectorized execution path: fusible \
           scan chains compile to one tight loop yielding batches of this \
           many records.  0 compiles everything record-at-a-time.  Default: \
           \\$(b,VOLCANO_BATCH_SIZE) when set, else 64.")

let name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY")

let list_term = Term.(const list_cmd $ const ())

let explain_term =
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "After printing the plan, run the static analyzer and exit \
             non-zero when $(i,any) diagnostic is emitted, warnings \
             included.  For lint gates in CI.")
  in
  Term.(
    const explain_cmd $ name_arg $ rows_arg $ degree_arg $ strict
    $ workers_arg $ batch_size_arg)

let analyze_term =
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Exit non-zero when $(i,any) diagnostic is emitted, warnings \
             included (the default exits non-zero only on errors).  For \
             lint gates in CI.")
  in
  let workers =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"W"
          ~doc:
            "Assume a worker pool of this size for the scheduler-placement \
             advisory (VL501); 0 disables it.  Default: the pool this \
             process would run the query on.")
  in
  let flow_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "flow-budget" ] ~docv:"RECORDS"
          ~doc:
            "Budget, in records, for the flow-control memory bound (VL502). \
             Default 1048576.")
  in
  Term.(
    const analyze_cmd $ name_arg $ rows_arg $ degree_arg $ strict $ workers
    $ flow_budget $ batch_size_arg)

let run_term =
  Term.(
    const run_cmd $ name_arg $ rows_arg $ degree_arg $ limit_arg $ workers_arg
    $ batch_size_arg)

let profile_term =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a Chrome trace_event JSON of the operator spans.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the machine-readable profile report.")
  in
  Term.(
    const profile_cmd $ name_arg $ rows_arg $ degree_arg $ trace $ json
    $ workers_arg $ batch_size_arg)

let sim_term =
  let packet =
    Arg.(value & opt int 83 & info [ "packet-size" ] ~docv:"P" ~doc:"Records per packet.")
  in
  let records =
    Arg.(value & opt int 100_000 & info [ "records" ] ~docv:"N" ~doc:"Records.")
  in
  Term.(const sim_cmd $ packet $ records)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/volcano.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path of the serving daemon.")

let net_worker_term =
  let socket =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SOCKET")
  in
  Term.(const net_worker_cmd $ socket)

let create_table_term =
  let partitions =
    Arg.(
      value & opt int 3
      & info [ "partitions"; "p" ] ~docv:"P"
          ~doc:"Partition count — one worker site per partition.")
  in
  let by =
    Arg.(
      value
      & opt string "hash:unique1"
      & info [ "by" ] ~docv:"KIND:COLUMN"
          ~doc:
            "Partition function: $(b,hash:<column>) or $(b,range:<column>).  \
             Range bounds split the dense [0, N) key space evenly, so range \
             partitioning is meaningful on a permutation column \
             (unique1, unique2).")
  in
  let remote_scan =
    Arg.(
      value & flag
      & info [ "remote-scan" ]
          ~doc:
            "After partitioning, scan the table back through one worker \
             process per site (each site rebuilds only the partitions it \
             owns), verify the row count, and print per-site wire \
             statistics.")
  in
  let tcp =
    Arg.(
      value & flag
      & info [ "tcp" ]
          ~doc:
            "Use the TCP lane (127.0.0.1, ephemeral port) instead of a \
             Unix-domain socket for $(b,--remote-scan).")
  in
  Term.(
    const create_table_cmd $ rows_arg $ partitions $ by $ remote_scan $ tcp)

let serve_term =
  let max_concurrent =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-concurrent" ] ~docv:"Q"
          ~doc:
            "Admission bound: plans executing concurrently; further \
             requests queue.  Default: the runtime's own.")
  in
  Term.(
    const serve_cmd $ socket_arg $ workers_arg $ batch_size_arg
    $ max_concurrent)

let query_term =
  let request =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL|TASK")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Send the request to a running serve daemon at this socket \
             instead of executing it in-process.")
  in
  Term.(
    const query_cmd $ socket $ request $ limit_arg $ workers_arg
    $ batch_size_arg)

let shutdown_term = Term.(const shutdown_cmd $ socket_arg)

let serve_smoke_term =
  let clients =
    Arg.(
      value & opt int 8
      & info [ "clients" ] ~docv:"C" ~doc:"Concurrent client connections.")
  in
  let requests =
    Arg.(
      value & opt int 4
      & info [ "requests" ] ~docv:"R" ~doc:"Queries per client.")
  in
  let rows =
    Arg.(
      value & opt int 200
      & info [ "rows" ] ~docv:"N" ~doc:"Base relation size per query.")
  in
  Term.(const serve_smoke_cmd $ clients $ requests $ rows)

let cmds =
  [
    Cmd.v (Cmd.info "list" ~doc:"List the demo queries.") list_term;
    Cmd.v
      (Cmd.info "explain"
         ~doc:
           "Print a query's operator tree.  Takes a SQL statement (the \
            optimizer's chosen plan plus its candidate notes) or a demo \
            name from `list`; --strict additionally runs the static \
            analyzer and exits non-zero on any diagnostic.")
      explain_term;
    Cmd.v
      (Cmd.info "analyze"
         ~doc:
           "Static analysis: print the analyzer's diagnostics for a query's \
            plan (exit 1 if it would be rejected; with --strict, exit 1 on \
            any diagnostic at all).")
      analyze_term;
    Cmd.v (Cmd.info "run" ~doc:"Execute a demo query.") run_term;
    Cmd.v
      (Cmd.info "profile"
         ~doc:
           "Execute a demo query with observability on and print the plan \
            tree annotated with per-node rows, calls, time, and exchange \
            packet/flow statistics (EXPLAIN ANALYZE).")
      profile_term;
    Cmd.v
      (Cmd.info "sim" ~doc:"Run the Figure-2a topology on the simulated Sequent.")
      sim_term;
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Start the query-serving daemon: a Session wrapped behind a \
            framed request/response protocol on a Unix-domain socket.  \
            Runs until a client sends shutdown.")
      serve_term;
    Cmd.v
      (Cmd.info "query"
         ~doc:
           "Execute one request and print the result rows.  The request \
            is a SQL statement (planned by the optimizer) or a task — \
            wisconsin:<rows>[:<seed>], or demo:<name>:<rows>:<degree> \
            for any query from `list`; tasks with a SQL spelling print \
            it and run as SQL.  Default is in-process; --socket routes \
            the same request to a running serve daemon.")
      query_term;
    Cmd.v
      (Cmd.info "shutdown" ~doc:"Stop a running serve daemon.")
      shutdown_term;
    Cmd.v
      (Cmd.info "serve-smoke"
         ~doc:
           "End-to-end smoke test of the serving plane: spawn a daemon, \
            drive it with concurrent clients, verify results, shut it \
            down cleanly.")
      serve_smoke_term;
    Cmd.v
      (Cmd.info "create-table"
         ~doc:
           "Partition a generated Wisconsin relation into per-site heap \
            files (table#0, table#1, ...) with a catalog entry recording \
            the placement; with --remote-scan, read it back through one \
            worker process per site over the chosen transport lane.")
      create_table_term;
    Cmd.v
      (Cmd.info "net-worker"
         ~doc:
           "Worker-process mode for remote exchange (spawned by the \
            launcher; not for interactive use).")
      net_worker_term;
  ]

let () =
  let info =
    Cmd.info "volcano" ~version:"1.0.0"
      ~doc:"Volcano query processing system — exchange-operator reproduction"
  in
  exit (Cmd.eval' (Cmd.group info cmds))
