(* conclint CLI: lint OCaml sources for concurrency hazards.

   Usage: volcano_lint PATH...        (directories are scanned for .ml)

   Exit status: 0 when clean, 1 when any diagnostic is reported, 2 on
   usage errors.  Codes are stable (CL001 suspend-under-lock, CL002
   lock-order-cycle, CL003 blocking-in-fiber) so CI can grep them. *)

let () =
  let paths =
    match Array.to_list Sys.argv with
    | _ :: rest -> List.filter (fun a -> a <> "") rest
    | [] -> []
  in
  if paths = [] then begin
    prerr_endline "usage: volcano_lint PATH...";
    exit 2
  end;
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "volcano_lint: no such path: %s\n" p;
        exit 2
      end)
    paths;
  let diags = Volcano_lint.Lint.run_paths paths in
  List.iter (fun d -> print_endline (Volcano_lint.Cldiag.to_string d)) diags;
  match diags with
  | [] ->
      print_endline "conclint: clean";
      exit 0
  | _ ->
      Printf.printf "conclint: %d diagnostic(s)\n" (List.length diags);
      exit 1
