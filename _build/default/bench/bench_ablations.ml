(* Ablation benchmarks A1-A8 (see DESIGN.md): the design choices the paper
   discusses, each isolated and measured. *)

open Bench_common
module Exchange = Volcano.Exchange
module Group = Volcano.Group
module Iterator = Volcano.Iterator
module Port = Volcano.Port
module Packet = Volcano.Packet
module Support = Volcano_tuple.Support
module Value = Volcano_tuple.Value
module Tuple = Volcano_tuple.Tuple
module Bufpool = Volcano_storage.Bufpool
module Device = Volcano_storage.Device
module Sim = Volcano_sim.Sim
module Calibration = Volcano_sim.Calibration
module Stats = Volcano_util.Stats
module Clock = Volcano_util.Clock
module W = Volcano_wisconsin.Wisconsin

(* A1: flow-control slack.  A fast producer against a slower consumer: the
   slack semaphore bounds how far producers run ahead (buffer pressure) at
   a small cost in synchronization. *)
let a1_flow_slack () =
  header "A1: flow-control slack (fast producer, slow consumer)";
  row "%10s %12s %18s\n" "slack" "elapsed (s)" "peak packets queued";
  hline 44;
  let n_packets = 5_000 in
  let run slack =
    let port = Port.create ~producers:1 ~consumers:1 ?flow_slack:slack () in
    let producer =
      Domain.spawn (fun () ->
          for i = 0 to n_packets - 1 do
            let packet = Packet.create ~capacity:4 ~producer:0 in
            Packet.add packet (four_int_tuple i);
            if i = n_packets - 1 then Packet.tag_end_of_stream packet;
            Port.send port ~producer:0 ~consumer:0 packet
          done)
    in
    let consumed = ref 0 in
    let rec drain () =
      match Port.receive port ~consumer:0 with
      | None -> ()
      | Some packet ->
          (* A consumer that does some work per packet. *)
          let spin = ref 0 in
          for _ = 1 to 300 do
            incr spin
          done;
          ignore !spin;
          incr consumed;
          if not (Packet.end_of_stream packet) then drain ()
    in
    let (), elapsed = Clock.time (fun () -> drain (); Domain.join producer) in
    (elapsed, Port.max_depth port)
  in
  List.iter
    (fun slack ->
      let elapsed, depth = run slack in
      row "%10s %12.3f %18d\n"
        (match slack with Some n -> string_of_int n | None -> "off")
        elapsed depth)
    [ Some 1; Some 2; Some 4; Some 8; None ]

(* A2: centralized vs propagation-tree forking (section 4.2). *)
let a2_fork_scheme () =
  header "A2: producer-group forking scheme (open..close of an empty query)";
  row "%8s %16s %16s\n" "degree" "tree (ms)" "central (ms)";
  hline 44;
  let run degree fork_mode =
    let cfg = Exchange.config ~degree ~fork_mode () in
    let iterator =
      Exchange.iterator cfg ~group:(Group.solo ()) ~input:(fun _ ->
          Iterator.generate ~count:1 ~f:four_int_tuple)
    in
    Clock.time_unit (fun () -> ignore (Iterator.consume iterator))
  in
  List.iter
    (fun degree ->
      (* Take the best of three to damp scheduler noise. *)
      let best f = List.fold_left min infinity (List.init 3 (fun _ -> f ())) in
      let tree = best (fun () -> run degree Exchange.Fork_tree) in
      let central = best (fun () -> run degree Exchange.Fork_central) in
      row "%8d %16.2f %16.2f\n" degree (tree *. 1e3) (central *. 1e3))
    [ 1; 2; 4; 8 ]

(* A3: partitioning support functions on skewed data (section 4.2 offers
   round-robin, key-range and hash partitioning). *)
let a3_partition_balance () =
  header "A3: partition balance on skewed keys (8 partitions, 100,000 rows)";
  row "%8s %14s %14s %14s\n" "theta" "round-robin" "hash" "range";
  row "%8s %14s %14s %14s\n" "" "(cv)" "(cv)" "(cv)";
  hline 56;
  let n = 100_000 and key_space = 10_000 and consumers = 8 in
  List.iter
    (fun theta ->
      let gen = W.skewed_generator ~n ~key_space ~theta () in
      let cv factory =
        let partition = factory () in
        let counts = Array.make consumers 0 in
        for i = 0 to n - 1 do
          let p = partition (gen i) in
          counts.(p) <- counts.(p) + 1
        done;
        let stats = Stats.of_list (List.map float_of_int (Array.to_list counts)) in
        Stats.coefficient_of_variation stats
      in
      let bounds =
        Array.init (consumers - 1) (fun i ->
            Value.Int ((i + 1) * key_space / consumers))
      in
      row "%8.1f %14.4f %14.4f %14.4f\n" theta
        (cv (fun () -> Support.Partition.round_robin ~consumers ()))
        (cv (fun () -> Support.Partition.hash ~consumers ~on:[ 0 ] ()))
        (cv (fun () -> Support.Partition.range ~consumers ~on:0 ~bounds ())))
    [ 0.0; 0.5; 1.0; 1.2 ];
  row
    "\n(round-robin balances perfectly but destroys key locality; hash\n\
    \ degrades gracefully; equal-width ranges collapse under skew)\n"

(* A4: buffer-manager locking — the paper's two-level scheme vs one global
   lock (section 4.5 rejects the latter for "decreased concurrency"). *)
let a4_buffer_locking () =
  header "A4: buffer-pool locking scheme (4 domains x 30,000 fixes)";
  row "%16s %14s %14s %12s\n" "mode" "elapsed (s)" "M fixes/s" "restarts";
  hline 60;
  let run mode =
    let pool = Bufpool.create ~mode ~frames:32 ~page_size:512 () in
    let dev = Device.create_virtual ~page_size:512 ~capacity:256 () in
    let pages = Array.init 64 (fun _ -> Device.allocate dev) in
    Array.iter
      (fun p ->
        let f = Bufpool.fix_new pool dev p in
        Bufpool.mark_dirty f;
        Bufpool.unfix pool f)
      pages;
    let ops = 30_000 in
    let worker seed () =
      let rng = Volcano_util.Rng.create (Int64.of_int seed) in
      for _ = 1 to ops do
        let page = pages.(Volcano_util.Rng.int rng 64) in
        let f = Bufpool.fix pool dev page in
        Bufpool.unfix pool f
      done
    in
    let (), elapsed =
      Clock.time (fun () ->
          let domains = List.init 4 (fun i -> Domain.spawn (worker (i + 1))) in
          List.iter Domain.join domains)
    in
    (elapsed, (Bufpool.stats pool).Bufpool.restarts)
  in
  List.iter
    (fun (name, mode) ->
      let elapsed, restarts = run mode in
      row "%16s %14.3f %14.2f %12d\n" name elapsed
        (4.0 *. 30_000.0 /. elapsed /. 1e6)
        restarts)
    [ ("two-level", Bufpool.Two_level); ("single-global", Bufpool.Single_global) ]

(* A5: hash-division parallelization — divisor vs quotient partitioning
   (section 4.4), on the simulated 12-CPU machine.  Quotient partitioning
   divides the dividend across processes; divisor partitioning replicates
   it, so every process probes the full dividend against its divisor
   fragment. *)
let a5_division_partitioning () =
  header "A5: hash-division — quotient vs divisor partitioning (simulated)";
  row "%8s %18s %18s\n" "degree" "quotient part (s)" "divisor part (s)";
  hline 48;
  let dividend = 100_000 in
  let probe_cost = 150.0e-6 in
  let sim ~records ~degree =
    Sim.run
      {
        Sim.stages =
          [|
            {
              processes = degree;
              per_record = probe_cost;
              per_packet_send = Calibration.packet_send_cost;
              per_packet_recv = 0.0;
            };
            {
              processes = 1;
              per_record = 5.0e-6;
              per_packet_send = 0.0;
              per_packet_recv = Calibration.packet_recv_cost;
            };
          |];
        records;
        packet_size = 83;
        flow_slack = Some 4;
        cpus = Calibration.sequent_cpus;
      }
  in
  List.iter
    (fun degree ->
      (* quotient partitioning: the dividend is split across processes;
         divisor partitioning: each process probes the whole dividend. *)
      let quotient = sim ~records:dividend ~degree in
      let divisor = sim ~records:(dividend * degree) ~degree in
      row "%8d %18.2f %18.2f\n" degree quotient.Sim.elapsed divisor.Sim.elapsed)
    [ 1; 2; 4; 8; 12 ];
  row
    "\n(quotient partitioning scales; divisor partitioning only reduces each\n\
    \ process's divisor table, so its probing work is replicated — matching\n\
    \ Graefe's division study)\n"

(* A6: the two parallel-sort organizations of section 4.4 on the real
   engine. *)
let a6_parallel_sort () =
  header
    (Printf.sprintf "A6: parallel sort organizations (%d records, 1 CPU)"
       (records / 2));
  let n = records / 2 in
  let key = [ (0, Support.Asc) ] in
  let env = fresh_env () in
  Volcano_plan.Env.set_sort_run_capacity env 16_384;
  let serial = Plan.Sort { key; input = generate n } in
  let merge_network =
    Volcano_plan.Parallel.parallel_sort ~degree:3 ~key (generate_slice n)
  in
  let bounds = Array.init 2 (fun i -> Value.Int ((i + 1) * n / 3)) in
  let interchange =
    Plan.Exchange_merge
      {
        cfg = Exchange.config ~degree:3 ();
        key;
        input =
          Plan.Sort
            {
              key;
              input =
                Plan.Interchange
                  {
                    cfg =
                      Exchange.config ~degree:3
                        ~partition:(Exchange.Range_on (0, bounds)) ();
                    input = generate_slice n;
                  };
            };
      }
  in
  row "%-44s %12s\n" "organization" "elapsed (s)";
  hline 58;
  List.iter
    (fun (name, plan) ->
      let count, elapsed = time_count env plan in
      assert (count = n);
      row "%-44s %12.3f\n" name elapsed)
    [
      ("serial external sort", serial);
      ("merge network (sort slices, merge streams)", merge_network);
      ("range interchange (one process per disk)", interchange);
    ]

(* A7: intra-operator speedup on the simulated 12-CPU machine. *)
let a7_speedup () =
  header "A7: intra-operator speedup, simulated 12-CPU Sequent";
  row "%8s %12s %10s %12s\n" "degree" "elapsed (s)" "speedup" "efficiency";
  hline 46;
  let base = (Calibration.intra_op_speedup ~degree:1 ()).Sim.elapsed in
  List.iter
    (fun degree ->
      let elapsed = (Calibration.intra_op_speedup ~degree ()).Sim.elapsed in
      let speedup = base /. elapsed in
      row "%8d %12.2f %10.2f %12.2f\n" degree elapsed speedup
        (speedup /. float_of_int degree))
    [ 1; 2; 4; 6; 8; 10; 12 ]

(* A8: broadcast vs partitioned exchange.  Broadcasting to k consumers
   moves k times the records (sharing, not copying, the tuples). *)
let a8_broadcast () =
  header "A8: broadcast vs partitioned exchange (degree 2 producers)";
  let n = records / 4 in
  let consume partition expected =
    let inner_id = Exchange.fresh_id () in
    let outer_cfg = Exchange.config ~degree:3 () in
    let inner_cfg = Exchange.config ~degree:2 ~partition () in
    let outer =
      Exchange.iterator outer_cfg ~group:(Group.solo ()) ~input:(fun group ->
          Exchange.iterator ~id:inner_id inner_cfg ~group ~input:(fun igroup ->
              let irank = Group.rank igroup in
              let share = (n / 2) + (if irank < n mod 2 then 1 else 0) in
              Iterator.generate ~count:share ~f:four_int_tuple))
    in
    let count, elapsed = Clock.time (fun () -> Iterator.consume outer) in
    assert (count = expected);
    (count, elapsed)
  in
  row "%-24s %14s %14s %14s\n" "mode" "delivered" "elapsed (s)" "us/delivery";
  hline 70;
  List.iter
    (fun (name, partition, expected) ->
      let count, elapsed = consume partition expected in
      row "%-24s %14d %14.3f %14.2f\n" name count elapsed
        (per_record_us elapsed count))
    [
      ("round-robin", Exchange.Round_robin, n);
      ("broadcast (x3)", Exchange.Broadcast, n * 3);
    ]

let run () =
  a1_flow_slack ();
  a2_fork_scheme ();
  a3_partition_balance ();
  a4_buffer_locking ();
  a5_division_partitioning ();
  a6_parallel_sort ();
  a7_speedup ();
  a8_broadcast ()
