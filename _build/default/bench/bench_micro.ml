(* Bechamel micro-benchmarks: per-call costs underlying the T1 table —
   record creation/consumption, the procedure-call exchange boundary, the
   buffer manager's fix/unfix pair, packet filling, and the interpreted vs
   compiled predicate paths. *)

open Bechamel
open Toolkit
module Iterator = Volcano.Iterator
module Exchange = Volcano.Exchange
module Group = Volcano.Group
module Packet = Volcano.Packet
module Bufpool = Volcano_storage.Bufpool
module Device = Volcano_storage.Device
module Expr = Volcano_tuple.Expr
module Tuple = Volcano_tuple.Tuple

let batch = 1_000

let t1a_create_release () =
  ignore
    (Iterator.consume (Iterator.generate ~count:batch ~f:Bench_common.four_int_tuple))

let t1b_interchange () =
  let group = Group.solo () in
  let inner = Iterator.generate ~count:batch ~f:Bench_common.four_int_tuple in
  let wrapped =
    Exchange.interchange (Exchange.config ~degree:1 ()) ~group ~input:inner
  in
  ignore (Iterator.consume wrapped)

let fix_unfix =
  let pool = Bufpool.create ~frames:8 ~page_size:512 () in
  let dev = Device.create_virtual ~page_size:512 ~capacity:16 () in
  let page = Device.allocate dev in
  let f = Bufpool.fix_new pool dev page in
  Bufpool.unfix pool f;
  fun () ->
    for _ = 1 to batch do
      let f = Bufpool.fix pool dev page in
      Bufpool.unfix pool f
    done

let packet_fill =
  let tuple = Bench_common.four_int_tuple 7 in
  fun () ->
    let packet = Packet.create ~capacity:83 ~producer:0 in
    for _ = 1 to 83 do
      Packet.add packet tuple
    done;
    for i = 0 to 82 do
      ignore (Packet.get packet i)
    done

let predicate_paths =
  let open Expr.Infix in
  let pred = Expr.col 0 + Expr.int 3 < Expr.col 1 * Expr.int 2 in
  let tuple = Tuple.of_ints [ 5; 9; 1; 2 ] in
  let interpreted () =
    for _ = 1 to batch do
      ignore (Expr.Interp.pred pred tuple)
    done
  in
  let compiled = Expr.Compiled.pred pred in
  let compiled_fn () =
    for _ = 1 to batch do
      ignore (compiled tuple)
    done
  in
  (interpreted, compiled_fn)

let tests =
  let interpreted, compiled = predicate_paths in
  Test.make_grouped ~name:"volcano"
    [
      Test.make ~name:"t1a-create-release-1k" (Staged.stage t1a_create_release);
      Test.make ~name:"t1b-interchange-1k" (Staged.stage t1b_interchange);
      Test.make ~name:"buffer-fix-unfix-1k" (Staged.stage fix_unfix);
      Test.make ~name:"packet-fill-83" (Staged.stage packet_fill);
      Test.make ~name:"pred-interpreted-1k" (Staged.stage interpreted);
      Test.make ~name:"pred-compiled-1k" (Staged.stage compiled);
    ]

let run () =
  Bench_common.header "Micro-benchmarks (bechamel, ns per call)";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) results [] in
  List.iter
    (fun name ->
      let result = Hashtbl.find results name in
      match Analyze.OLS.estimates result with
      | Some (est :: _) -> Printf.printf "%-36s %14.1f ns\n" name est
      | _ -> Printf.printf "%-36s %14s\n" name "n/a")
    (List.sort compare names)
