bench/bench_fig2.ml: Bench_common List Plan Printf Volcano Volcano_sim
