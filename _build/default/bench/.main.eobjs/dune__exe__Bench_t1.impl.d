bench/bench_t1.ml: Bench_common Compile Plan Printf Volcano Volcano_sim Volcano_util
