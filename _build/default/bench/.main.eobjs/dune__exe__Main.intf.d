bench/main.mli:
