bench/bench_micro.ml: Analyze Bechamel Bench_common Benchmark Hashtbl Instance List Measure Printf Staged Test Time Toolkit Volcano Volcano_storage Volcano_tuple
