bench/bench_common.ml: Printf String Sys Volcano_plan Volcano_tuple Volcano_util
