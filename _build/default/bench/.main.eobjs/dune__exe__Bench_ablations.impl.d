bench/bench_ablations.ml: Array Bench_common Domain Int64 List Plan Printf Volcano Volcano_plan Volcano_sim Volcano_storage Volcano_tuple Volcano_util Volcano_wisconsin
