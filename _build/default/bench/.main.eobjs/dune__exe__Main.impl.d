bench/main.ml: Array Bench_ablations Bench_fig2 Bench_micro Bench_t1 Domain List Printf String Sys
