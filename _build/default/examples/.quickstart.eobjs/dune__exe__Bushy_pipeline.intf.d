examples/bushy_pipeline.mli:
