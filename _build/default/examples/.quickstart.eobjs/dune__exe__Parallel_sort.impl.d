examples/parallel_sort.ml: Array List Printf Volcano Volcano_plan Volcano_tuple Volcano_util Volcano_wisconsin
