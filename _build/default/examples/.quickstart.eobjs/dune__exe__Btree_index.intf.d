examples/btree_index.mli:
