examples/hash_division.mli:
