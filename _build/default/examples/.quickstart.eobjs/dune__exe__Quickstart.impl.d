examples/quickstart.ml: List Printf Volcano_ops Volcano_plan Volcano_tuple Volcano_wisconsin
