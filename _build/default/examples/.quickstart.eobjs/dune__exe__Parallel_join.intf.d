examples/parallel_join.mli:
