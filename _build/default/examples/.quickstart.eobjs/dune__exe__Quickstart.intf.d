examples/quickstart.mli:
