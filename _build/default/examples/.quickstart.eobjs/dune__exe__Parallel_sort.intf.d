examples/parallel_sort.mli:
