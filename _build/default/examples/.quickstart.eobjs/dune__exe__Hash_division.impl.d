examples/hash_division.ml: Array Fun List Printf Volcano Volcano_ops Volcano_plan Volcano_tuple Volcano_util
