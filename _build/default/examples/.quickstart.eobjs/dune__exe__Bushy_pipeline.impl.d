examples/bushy_pipeline.ml: List Printf Volcano Volcano_ops Volcano_plan Volcano_tuple Volcano_util Volcano_wisconsin
