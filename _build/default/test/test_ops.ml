(* Operator tests: each algorithm is checked against a straightforward
   list-based model, including qcheck property tests that run both the
   sort-based and the hash-based implementation of the match family against
   the model on random multisets. *)

module Iterator = Volcano.Iterator
module Tuple = Volcano_tuple.Tuple
module Value = Volcano_tuple.Value
module Support = Volcano_tuple.Support
module Ops = Volcano_ops
module Device = Volcano_storage.Device
module Bufpool = Volcano_storage.Bufpool
module Heap_file = Volcano_storage.Heap_file

let check = Alcotest.check

let make_spill () =
  {
    Ops.Sort.device = Device.create_virtual ~page_size:256 ~capacity:4096 ();
    buffer = Bufpool.create ~frames:32 ~page_size:256 ();
  }

let ints_of it = List.map (fun t -> Tuple.int_exn t 0) (Iterator.to_list it)

let tuple_list = Alcotest.testable (Fmt.Dump.list (Fmt.of_to_string Tuple.to_string))
    (List.equal Tuple.equal)

(* --- scan --- *)

let test_heap_scan_roundtrip () =
  let spill = make_spill () in
  let file =
    Heap_file.create ~buffer:spill.Ops.Sort.buffer ~device:spill.Ops.Sort.device
      ~name:"t"
  in
  let tuples = List.init 50 (fun i -> Tuple.of_ints [ i; i * i ]) in
  let n = Ops.Scan.materialize (Iterator.of_list tuples) ~into:file in
  check Alcotest.int "materialized" 50 n;
  check tuple_list "scan" tuples (Iterator.to_list (Ops.Scan.heap file))

let test_heap_scan_filtered () =
  let spill = make_spill () in
  let file =
    Heap_file.create ~buffer:spill.Ops.Sort.buffer ~device:spill.Ops.Sort.device
      ~name:"t"
  in
  let tuples = List.init 50 (fun i -> Tuple.of_ints [ i ]) in
  let _ = Ops.Scan.materialize (Iterator.of_list tuples) ~into:file in
  let even t = Tuple.int_exn t 0 mod 2 = 0 in
  check Alcotest.int "filtered in scan" 25
    (Iterator.consume (Ops.Scan.heap_filtered ~pred:even file))

let test_btree_scan () =
  let spill = make_spill () in
  let tree =
    Volcano_btree.Btree.create ~buffer:spill.Ops.Sort.buffer
      ~device:spill.Ops.Sort.device ~name:"idx" ~cmp:String.compare
  in
  for i = 0 to 49 do
    let t = Tuple.of_ints [ i ] in
    Volcano_btree.Btree.insert tree
      ~key:(Printf.sprintf "%04d" i)
      ~value:(Bytes.to_string (Volcano_tuple.Serial.encode t))
  done;
  let it =
    Ops.Scan.btree tree
      ~lo:(Volcano_btree.Btree.Inclusive "0010")
      ~hi:(Volcano_btree.Btree.Exclusive "0015")
  in
  check (Alcotest.list Alcotest.int) "index range" [ 10; 11; 12; 13; 14 ]
    (ints_of it)

(* --- filter / project --- *)

let test_filter () =
  let input = Iterator.generate ~count:100 ~f:(fun i -> Tuple.of_ints [ i ]) in
  let it = Ops.Filter.iterator ~pred:(fun t -> Tuple.int_exn t 0 < 10) input in
  check (Alcotest.list Alcotest.int) "filter" (List.init 10 Fun.id) (ints_of it)

let test_project () =
  let input = Iterator.of_list [ Tuple.of_ints [ 1; 2; 3 ] ] in
  let it = Ops.Project.columns [ 2; 0 ] input in
  check tuple_list "columns" [ Tuple.of_ints [ 3; 1 ] ] (Iterator.to_list it);
  let open Volcano_tuple.Expr.Infix in
  let input = Iterator.of_list [ Tuple.of_ints [ 5; 7 ] ] in
  let it =
    Ops.Project.exprs
      [ Volcano_tuple.Expr.col 0 + Volcano_tuple.Expr.col 1 ]
      input
  in
  check tuple_list "exprs" [ Tuple.of_ints [ 12 ] ] (Iterator.to_list it)

(* --- sort --- *)

let cmp0 = Support.compare_cols [ 0 ]

let test_sort_in_memory () =
  let input =
    Iterator.of_list (List.map (fun i -> Tuple.of_ints [ i ]) [ 5; 2; 9; 1; 7 ])
  in
  let it = Ops.Sort.iterator ~cmp:cmp0 input in
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 2; 5; 7; 9 ] (ints_of it)

let test_sort_with_spill () =
  let spill = make_spill () in
  let rng = Volcano_util.Rng.create 99L in
  let values = Array.init 2000 (fun _ -> Volcano_util.Rng.int rng 10_000) in
  let input =
    Iterator.generate ~count:2000 ~f:(fun i -> Tuple.of_ints [ values.(i) ])
  in
  (* Tiny runs and fan-in force spilling and a cascaded merge. *)
  let before = Ops.Sort.runs_spilled () in
  let it = Ops.Sort.iterator ~run_capacity:100 ~fan_in:3 ~spill ~cmp:cmp0 input in
  let got = ints_of it in
  check Alcotest.bool "spilled runs" true (Ops.Sort.runs_spilled () > before);
  check
    (Alcotest.list Alcotest.int)
    "external sort"
    (List.sort compare (Array.to_list values))
    got;
  (* All run files are dropped after the sort closes. *)
  check Alcotest.int "spill space reclaimed" 1
    (Device.allocated_pages spill.Ops.Sort.device)

let test_sort_desc () =
  let input =
    Iterator.of_list (List.map (fun i -> Tuple.of_ints [ i ]) [ 3; 1; 2 ])
  in
  let it =
    Ops.Sort.iterator ~cmp:(Support.compare_on [ (0, Support.Desc) ]) input
  in
  check (Alcotest.list Alcotest.int) "descending" [ 3; 2; 1 ] (ints_of it)

let prop_sort_random =
  QCheck.Test.make ~name:"external sort equals list sort" ~count:50
    QCheck.(pair (list small_int) (int_range 1 50))
    (fun (xs, run_capacity) ->
      let spill = make_spill () in
      let input = Iterator.of_list (List.map (fun i -> Tuple.of_ints [ i ]) xs) in
      let it = Ops.Sort.iterator ~run_capacity ~fan_in:2 ~spill ~cmp:cmp0 input in
      ints_of it = List.sort compare xs)

(* --- merge --- *)

let test_merge_sorted_streams () =
  let a = Iterator.of_list (List.map (fun i -> Tuple.of_ints [ i ]) [ 1; 4; 7 ]) in
  let b = Iterator.of_list (List.map (fun i -> Tuple.of_ints [ i ]) [ 2; 5; 8 ]) in
  let c = Iterator.of_list (List.map (fun i -> Tuple.of_ints [ i ]) [ 3; 6; 9 ]) in
  let it = Ops.Merge.of_iterators ~cmp:cmp0 [| a; b; c |] in
  check (Alcotest.list Alcotest.int) "merged" [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (ints_of it)

let test_merge_network () =
  (* producers emit sorted slices; exchange_merge must deliver a globally
     sorted stream. *)
  let cfg = Volcano.Exchange.config ~degree:3 ~packet_size:7 () in
  let it =
    Ops.Merge.exchange_merge cfg ~cmp:cmp0 ~group:(Volcano.Group.solo ())
      ~input:(fun group ->
        let rank = Volcano.Group.rank group in
        Iterator.generate ~count:100 ~f:(fun i -> Tuple.of_ints [ (i * 3) + rank ]))
  in
  check (Alcotest.list Alcotest.int) "merge network" (List.init 300 Fun.id)
    (ints_of it)

(* --- the match family --- *)

let kinds =
  [
    Ops.Match_op.Join; Ops.Match_op.Left_outer; Ops.Match_op.Right_outer;
    Ops.Match_op.Full_outer; Ops.Match_op.Semi; Ops.Match_op.Anti;
    Ops.Match_op.Union; Ops.Match_op.Intersection; Ops.Match_op.Difference;
    Ops.Match_op.Anti_difference;
  ]

(* List model: group by key value, apply the shared group semantics. *)
let model_match kind left right =
  let keys =
    List.sort_uniq compare (List.map (fun t -> Tuple.int_exn t 0) (left @ right))
  in
  List.concat_map
    (fun k ->
      let lgroup = List.filter (fun t -> Tuple.int_exn t 0 = k) left in
      let rgroup = List.filter (fun t -> Tuple.int_exn t 0 = k) right in
      Ops.Match_op.emit_group kind ~left_arity:2 ~right_arity:2 ~left:lgroup
        ~right:rgroup)
    keys

let sorted_tuples ts = List.sort Tuple.compare ts

(* One-to-one set operations choose WHICH duplicate survives arbitrarily
   (the choice among tuples agreeing on the key is implementation-defined),
   so their outputs are compared on the key column only. *)
let canonical kind ts =
  match kind with
  | Ops.Match_op.Union | Ops.Match_op.Intersection | Ops.Match_op.Difference
  | Ops.Match_op.Anti_difference ->
      List.sort Tuple.compare (List.map (fun t -> Tuple.project t [ 0 ]) ts)
  | Ops.Match_op.Join | Ops.Match_op.Left_outer | Ops.Match_op.Right_outer
  | Ops.Match_op.Full_outer | Ops.Match_op.Semi | Ops.Match_op.Anti ->
      sorted_tuples ts

let run_match algo kind left right =
  let left_it = Iterator.of_list left and right_it = Iterator.of_list right in
  let it =
    match algo with
    | `Merge ->
        Ops.Merge_match.iterator ~kind ~left_key:[ 0 ] ~right_key:[ 0 ]
          ~left_arity:2 ~right_arity:2
          ~left:(Ops.Sort.iterator ~cmp:cmp0 left_it)
          ~right:(Ops.Sort.iterator ~cmp:cmp0 right_it)
    | `Hash ->
        Ops.Hash_match.iterator ~kind ~left_key:[ 0 ] ~right_key:[ 0 ]
          ~left_arity:2 ~right_arity:2 left_it right_it
  in
  Iterator.to_list it

let input_of_ints side xs =
  List.mapi (fun i k -> Tuple.of_ints [ k; (side * 1000) + i ]) xs

let test_match_fixed () =
  let left = input_of_ints 1 [ 1; 2; 2; 3; 5 ] in
  let right = input_of_ints 2 [ 2; 3; 3; 4 ] in
  List.iter
    (fun kind ->
      let expected = canonical kind (model_match kind left right) in
      List.iter
        (fun algo ->
          let got = canonical kind (run_match algo kind left right) in
          let name =
            Printf.sprintf "%s (%s)"
              (Ops.Match_op.to_string kind)
              (match algo with `Merge -> "merge" | `Hash -> "hash")
          in
          check tuple_list name expected got)
        [ `Merge; `Hash ])
    kinds

let prop_match_all_kinds =
  QCheck.Test.make ~name:"merge and hash match agree with the model" ~count:100
    QCheck.(pair (list (int_bound 8)) (list (int_bound 8)))
    (fun (ls, rs) ->
      let left = input_of_ints 1 ls and right = input_of_ints 2 rs in
      List.for_all
        (fun kind ->
          let expected = canonical kind (model_match kind left right) in
          canonical kind (run_match `Merge kind left right) = expected
          && canonical kind (run_match `Hash kind left right) = expected)
        kinds)

let test_hash_match_grace_partitioning () =
  (* Force the Grace path with a small build capacity and verify the result
     matches the in-memory path. *)
  let spill = make_spill () in
  let left = input_of_ints 1 (List.init 300 (fun i -> i mod 40)) in
  let right = input_of_ints 2 (List.init 200 (fun i -> i mod 50)) in
  let in_memory =
    sorted_tuples (run_match `Hash Ops.Match_op.Join left right)
  in
  let partitioned =
    Ops.Hash_match.iterator ~build_capacity:32 ~partitions:4 ~spill
      ~kind:Ops.Match_op.Join ~left_key:[ 0 ] ~right_key:[ 0 ] ~left_arity:2
      ~right_arity:2 (Iterator.of_list left) (Iterator.of_list right)
  in
  check tuple_list "grace = in-memory" in_memory
    (sorted_tuples (Iterator.to_list partitioned))

let test_cartesian_product () =
  let left = input_of_ints 1 [ 1; 2 ] in
  let right = input_of_ints 2 [ 7; 8; 9 ] in
  let it =
    Ops.Nested_loops.cross ~left:(Iterator.of_list left)
      ~right:(Iterator.of_list right)
  in
  let got = Iterator.to_list it in
  check Alcotest.int "cardinality" 6 (List.length got);
  check Alcotest.int "arity" 4 (Tuple.arity (List.hd got))

let test_theta_join () =
  let left = List.init 10 (fun i -> Tuple.of_ints [ i ]) in
  let right = List.init 10 (fun i -> Tuple.of_ints [ i ]) in
  let pred t = Tuple.int_exn t 0 < Tuple.int_exn t 1 in
  let it =
    Ops.Nested_loops.join ~pred ~left:(Iterator.of_list left)
      ~right:(Iterator.of_list right)
  in
  check Alcotest.int "i<j pairs" 45 (Iterator.consume it)

(* --- aggregation --- *)

let agg_input =
  (* (group, value) pairs *)
  List.map
    (fun (g, v) -> Tuple.of_ints [ g; v ])
    [ (1, 10); (2, 20); (1, 30); (3, 5); (2, 2); (1, 2) ]

let expected_aggregates =
  (* group, count, sum, min, max *)
  [ (1, 3, 42, 2, 30); (2, 2, 22, 2, 20); (3, 1, 5, 5, 5) ]

let check_aggregate name it =
  let rows =
    List.map
      (fun t ->
        ( Tuple.int_exn t 0, Tuple.int_exn t 1, Tuple.int_exn t 2,
          Tuple.int_exn t 3, Tuple.int_exn t 4 ))
      (Iterator.to_list it)
  in
  check
    (Alcotest.list (Alcotest.testable (fun ppf _ -> Fmt.string ppf "<row>") ( = )))
    name expected_aggregates
    (List.sort compare rows)

let aggs =
  [
    Ops.Aggregate.Count;
    Ops.Aggregate.Sum (Volcano_tuple.Expr.col 1);
    Ops.Aggregate.Min (Volcano_tuple.Expr.col 1);
    Ops.Aggregate.Max (Volcano_tuple.Expr.col 1);
  ]

let test_hash_aggregate () =
  check_aggregate "hash agg"
    (Ops.Aggregate.hash_iterator ~group_by:[ 0 ] ~aggs
       (Iterator.of_list agg_input))

let test_sorted_aggregate () =
  check_aggregate "sort agg"
    (Ops.Aggregate.sorted_iterator ~group_by:[ 0 ] ~aggs
       (Ops.Sort.iterator ~cmp:cmp0 (Iterator.of_list agg_input)))

let test_avg () =
  let it =
    Ops.Aggregate.hash_iterator ~group_by:[]
      ~aggs:[ Ops.Aggregate.Avg (Volcano_tuple.Expr.col 0) ]
      (Iterator.of_list (List.map (fun i -> Tuple.of_ints [ i ]) [ 1; 2; 3; 4 ]))
  in
  match Iterator.to_list it with
  | [ t ] -> check (Alcotest.float 1e-9) "avg" 2.5 (Value.float_exn (Tuple.get t 0))
  | _ -> Alcotest.fail "expected one row"

let prop_distinct =
  QCheck.Test.make ~name:"distinct (both algorithms) = sort_uniq" ~count:200
    QCheck.(list (int_bound 20))
    (fun xs ->
      let tuples = List.map (fun i -> Tuple.of_ints [ i ]) xs in
      let expected = List.sort_uniq compare xs in
      let hash =
        ints_of (Ops.Aggregate.distinct_hash ~on:[ 0 ] (Iterator.of_list tuples))
      in
      let sorted =
        ints_of
          (Ops.Aggregate.distinct_sorted ~on:[ 0 ]
             (Ops.Sort.iterator ~cmp:cmp0 (Iterator.of_list tuples)))
      in
      List.sort compare hash = expected && sorted = expected)

(* --- division --- *)

(* dividend: (student, course); divisor: (course).  Result: students
   enrolled in every course. *)
let division_algorithms =
  [
    ("hash", fun ~dividend ~divisor ->
        Ops.Division.hash_division ~quotient:[ 0 ] ~divisor_attrs:[ 1 ]
          ~divisor_key:[ 0 ] ~dividend ~divisor);
    ("count", fun ~dividend ~divisor ->
        Ops.Division.count_division ~quotient:[ 0 ] ~divisor_attrs:[ 1 ]
          ~divisor_key:[ 0 ] ~dividend ~divisor);
    ("sort", fun ~dividend ~divisor ->
        Ops.Division.sort_division ~quotient:[ 0 ] ~divisor_attrs:[ 1 ]
          ~divisor_key:[ 0 ]
          ~dividend:(Ops.Sort.iterator ~cmp:(Support.compare_cols [ 0; 1 ]) dividend)
          ~divisor:(Ops.Sort.iterator ~cmp:cmp0 divisor));
  ]

let model_division pairs courses =
  let courses = List.sort_uniq compare courses in
  let students = List.sort_uniq compare (List.map fst pairs) in
  List.filter
    (fun s ->
      List.for_all (fun c -> List.mem (s, c) pairs) courses)
    students

let test_division_fixed () =
  let pairs =
    [ (1, 10); (1, 11); (1, 12); (2, 10); (2, 12); (3, 10); (3, 11); (3, 12); (3, 13) ]
  in
  let courses = [ 10; 11; 12 ] in
  let expected = model_division pairs courses in
  List.iter
    (fun (name, alg) ->
      let dividend =
        Iterator.of_list (List.map (fun (s, c) -> Tuple.of_ints [ s; c ]) pairs)
      in
      let divisor = Iterator.of_list (List.map (fun c -> Tuple.of_ints [ c ]) courses) in
      let got = List.sort compare (ints_of (alg ~dividend ~divisor)) in
      check (Alcotest.list Alcotest.int) name expected got)
    division_algorithms

let prop_division =
  QCheck.Test.make ~name:"three division algorithms match the model" ~count:100
    QCheck.(pair (list (pair (int_bound 6) (int_bound 6))) (list (int_bound 6)))
    (fun (pairs, courses) ->
      QCheck.assume (courses <> []);
      let pairs = List.sort_uniq compare pairs in
      let expected = model_division pairs courses in
      List.for_all
        (fun (_, alg) ->
          let dividend =
            Iterator.of_list (List.map (fun (s, c) -> Tuple.of_ints [ s; c ]) pairs)
          in
          let divisor =
            Iterator.of_list (List.map (fun c -> Tuple.of_ints [ c ]) courses)
          in
          List.sort compare (ints_of (alg ~dividend ~divisor)) = expected)
        division_algorithms)

let test_division_empty_divisor () =
  (* x / {} is conventionally everything, but all three of our algorithms
     define it as empty (n = 0 guard); they must agree. *)
  List.iter
    (fun (name, alg) ->
      let dividend = Iterator.of_list [ Tuple.of_ints [ 1; 2 ] ] in
      let divisor = Iterator.of_list [] in
      check (Alcotest.list Alcotest.int) name [] (ints_of (alg ~dividend ~divisor)))
    division_algorithms

let suite =
  [
    Alcotest.test_case "heap scan roundtrip" `Quick test_heap_scan_roundtrip;
    Alcotest.test_case "heap scan with predicate" `Quick test_heap_scan_filtered;
    Alcotest.test_case "btree scan" `Quick test_btree_scan;
    Alcotest.test_case "filter" `Quick test_filter;
    Alcotest.test_case "project" `Quick test_project;
    Alcotest.test_case "sort in memory" `Quick test_sort_in_memory;
    Alcotest.test_case "sort with spill" `Quick test_sort_with_spill;
    Alcotest.test_case "sort descending" `Quick test_sort_desc;
    QCheck_alcotest.to_alcotest prop_sort_random;
    Alcotest.test_case "merge sorted streams" `Quick test_merge_sorted_streams;
    Alcotest.test_case "merge network via exchange" `Quick test_merge_network;
    Alcotest.test_case "match family fixed case" `Quick test_match_fixed;
    QCheck_alcotest.to_alcotest prop_match_all_kinds;
    Alcotest.test_case "hash match grace partitioning" `Quick
      test_hash_match_grace_partitioning;
    Alcotest.test_case "cartesian product" `Quick test_cartesian_product;
    Alcotest.test_case "theta join" `Quick test_theta_join;
    Alcotest.test_case "hash aggregate" `Quick test_hash_aggregate;
    Alcotest.test_case "sorted aggregate" `Quick test_sorted_aggregate;
    Alcotest.test_case "average" `Quick test_avg;
    QCheck_alcotest.to_alcotest prop_distinct;
    Alcotest.test_case "division fixed case" `Quick test_division_fixed;
    QCheck_alcotest.to_alcotest prop_division;
    Alcotest.test_case "division empty divisor" `Quick test_division_empty_divisor;
  ]
