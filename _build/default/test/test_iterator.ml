(* Iterator protocol tests. *)

module Iterator = Volcano.Iterator
module Tuple = Volcano_tuple.Tuple

let check = Alcotest.check

let test_of_list_roundtrip () =
  let tuples = List.init 10 (fun i -> Tuple.of_ints [ i ]) in
  let result = Iterator.to_list (Iterator.of_list tuples) in
  check Alcotest.int "length" 10 (List.length result);
  List.iter2
    (fun a b -> check Alcotest.bool "tuples equal" true (Tuple.equal a b))
    tuples result

let test_generate () =
  let it = Iterator.generate ~count:5 ~f:(fun i -> Tuple.of_ints [ i * i ]) in
  check (Alcotest.list Alcotest.int) "squares" [ 0; 1; 4; 9; 16 ]
    (List.map (fun t -> Tuple.int_exn t 0) (Iterator.to_list it))

let test_consume_and_fold () =
  let it = Iterator.generate ~count:100 ~f:(fun i -> Tuple.of_ints [ i ]) in
  check Alcotest.int "consume" 100 (Iterator.consume it);
  let it = Iterator.generate ~count:10 ~f:(fun i -> Tuple.of_ints [ i ]) in
  let total = Iterator.fold (fun acc t -> acc + Tuple.int_exn t 0) 0 it in
  check Alcotest.int "fold" 45 total

let test_empty () =
  check Alcotest.int "empty" 0 (Iterator.consume Iterator.empty)

let protocol_error_msg = function
  | Iterator.Protocol_error m -> m
  | _ -> "?"

let expect_protocol_error f =
  match f () with
  | exception Iterator.Protocol_error _ -> ()
  | _ -> Alcotest.fail "expected Protocol_error"

let test_checked_protocol () =
  ignore protocol_error_msg;
  (* next before open *)
  let it = Iterator.checked (Iterator.of_list []) in
  expect_protocol_error (fun () -> Iterator.next it);
  (* double open *)
  let it = Iterator.checked (Iterator.of_list []) in
  Iterator.open_ it;
  expect_protocol_error (fun () -> Iterator.open_ it);
  (* next after exhaustion *)
  let it = Iterator.checked (Iterator.of_list [ Tuple.of_ints [ 1 ] ]) in
  Iterator.open_ it;
  ignore (Iterator.next it);
  ignore (Iterator.next it);
  expect_protocol_error (fun () -> Iterator.next it);
  (* close then next *)
  let it = Iterator.checked (Iterator.of_list []) in
  Iterator.open_ it;
  Iterator.close it;
  expect_protocol_error (fun () -> Iterator.next it);
  (* double close *)
  let it = Iterator.checked (Iterator.of_list []) in
  Iterator.open_ it;
  Iterator.close it;
  expect_protocol_error (fun () -> Iterator.close it)

let test_checked_happy_path () =
  let it =
    Iterator.checked (Iterator.generate ~count:3 ~f:(fun i -> Tuple.of_ints [ i ]))
  in
  check Alcotest.int "checked works" 3 (Iterator.consume it)

let suite =
  [
    Alcotest.test_case "of_list roundtrip" `Quick test_of_list_roundtrip;
    Alcotest.test_case "generate" `Quick test_generate;
    Alcotest.test_case "consume and fold" `Quick test_consume_and_fold;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "checked protocol violations" `Quick test_checked_protocol;
    Alcotest.test_case "checked happy path" `Quick test_checked_happy_path;
  ]
