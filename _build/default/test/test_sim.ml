(* Simulator tests: conservation, CPU contention, flow control, and
   agreement with the paper's published measurements. *)

module Sim = Volcano_sim.Sim
module Calibration = Volcano_sim.Calibration

let check = Alcotest.check

let stage ?(processes = 1) ?(per_record = 1e-4) ?(send = 0.0) ?(recv = 0.0) () =
  { Sim.processes; per_record; per_packet_send = send; per_packet_recv = recv }

let test_two_stage_basic () =
  let r =
    Sim.run
      {
        Sim.stages = [| stage (); stage () |];
        records = 1000;
        packet_size = 10;
        flow_slack = None;
        cpus = 4;
      }
  in
  (* 100 packets flow. *)
  check Alcotest.int "packets" 100 r.Sim.packets_total;
  (* Two stages of equal cost pipelined on plenty of CPUs: elapsed close to
     one stage's work (0.1 s) plus pipeline fill. *)
  check Alcotest.bool "pipelined" true (r.Sim.elapsed < 0.15);
  check Alcotest.bool "busy accounted" true
    (abs_float (r.Sim.stage_busy.(0) -. 0.1) < 0.01)

let test_single_cpu_serializes () =
  let r_parallel =
    Sim.run
      {
        Sim.stages = [| stage (); stage () |];
        records = 1000;
        packet_size = 10;
        flow_slack = None;
        cpus = 2;
      }
  in
  let r_serial =
    Sim.run
      {
        Sim.stages = [| stage (); stage () |];
        records = 1000;
        packet_size = 10;
        flow_slack = None;
        cpus = 1;
      }
  in
  (* One CPU must run both stages' work back to back. *)
  check Alcotest.bool "serialized is ~2x" true
    (r_serial.Sim.elapsed > 1.8 *. r_parallel.Sim.elapsed)

let test_flow_control_bounds_queue () =
  (* Fast producer, slow consumer. *)
  let stages slack =
    Sim.run
      {
        Sim.stages =
          [| stage ~per_record:1e-5 (); stage ~per_record:1e-3 () |];
        records = 500;
        packet_size = 5;
        flow_slack = slack;
        cpus = 4;
      }
  in
  let bounded = stages (Some 4) in
  let unbounded = stages None in
  check Alcotest.bool "bounded depth" true (bounded.Sim.max_queue_depth <= 4);
  check Alcotest.bool "unbounded grows" true (unbounded.Sim.max_queue_depth > 10);
  (* The consumer is the bottleneck either way; elapsed barely changes. *)
  check Alcotest.bool "same bottleneck" true
    (abs_float (bounded.Sim.elapsed -. unbounded.Sim.elapsed)
    < 0.2 *. unbounded.Sim.elapsed)

let test_intra_op_scaling () =
  let elapsed degree =
    (Calibration.intra_op_speedup ~degree ()).Sim.elapsed
  in
  let base = elapsed 1 in
  check Alcotest.bool "2-way halves" true
    (abs_float ((base /. elapsed 2) -. 2.0) < 0.2);
  check Alcotest.bool "8-way scales" true (base /. elapsed 8 > 6.0)

(* The paper's own numbers. *)

let within pct expected actual =
  abs_float (actual -. expected) <= expected *. pct

let test_paper_t1 () =
  check Alcotest.bool "single process 20.28s" true
    (within 0.01 20.28 (Calibration.t1_single_process ~records:100_000));
  check Alcotest.bool "interchange 28.00s" true
    (within 0.01 28.00 (Calibration.t1_interchange ~records:100_000 ~exchanges:3));
  let pipeline = Calibration.t1_pipeline ~records:100_000 () in
  (* The paper measured 16.21 s; the simulated pipeline must beat the
     single-process time, which is the headline qualitative claim. *)
  check Alcotest.bool "pipeline beats single process" true
    (pipeline.Sim.elapsed < 20.28);
  check Alcotest.bool "pipeline within 20% of 16.21s" true
    (within 0.2 16.21 pipeline.Sim.elapsed)

let test_paper_fig2a () =
  let measurements = [ (1, 171.0); (2, 94.0); (50, 15.0); (83, 13.7) ] in
  List.iter
    (fun (packet_size, expected) ->
      let r = Calibration.fig2a ~packet_size () in
      check Alcotest.bool
        (Printf.sprintf "packet %d ~ %.1fs (got %.1fs)" packet_size expected
           r.Sim.elapsed)
        true
        (within 0.05 expected r.Sim.elapsed))
    measurements;
  (* Monotone decrease with packet size. *)
  let times =
    List.map
      (fun ps -> (Calibration.fig2a ~packet_size:ps ()).Sim.elapsed)
      [ 1; 2; 5; 10; 20; 50; 83 ]
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a > b && monotone rest
    | _ -> true
  in
  check Alcotest.bool "monotone" true (monotone times)

let test_paper_fig2b_loglog_slope () =
  (* For packets < 10 records the log-log curve is a straight line of slope
     about -1 (per-packet cost dominates). *)
  let t1 = (Calibration.fig2a ~packet_size:1 ()).Sim.elapsed in
  let t2 = (Calibration.fig2a ~packet_size:2 ()).Sim.elapsed in
  let t5 = (Calibration.fig2a ~packet_size:5 ()).Sim.elapsed in
  let slope a b pa pb = (log b -. log a) /. (log (float_of_int pb) -. log (float_of_int pa)) in
  let s12 = slope t1 t2 1 2 and s25 = slope t2 t5 2 5 in
  check Alcotest.bool "slope near -1" true (s12 < -0.8 && s12 > -1.1);
  check Alcotest.bool "still straight" true (abs_float (s12 -. s25) < 0.2);
  (* Beyond 10 records the curve flattens: slope much shallower. *)
  let t20 = (Calibration.fig2a ~packet_size:20 ()).Sim.elapsed in
  let t83 = (Calibration.fig2a ~packet_size:83 ()).Sim.elapsed in
  let s_tail = slope t20 t83 20 83 in
  check Alcotest.bool "flattens" true (s_tail > -0.5)

let test_invalid_params () =
  Alcotest.check_raises "one stage" (Invalid_argument "Sim.run: need at least two stages")
    (fun () ->
      ignore
        (Sim.run
           {
             Sim.stages = [| stage () |];
             records = 1;
             packet_size = 1;
             flow_slack = None;
             cpus = 1;
           }))

let suite =
  [
    Alcotest.test_case "two-stage conservation" `Quick test_two_stage_basic;
    Alcotest.test_case "single cpu serializes" `Quick test_single_cpu_serializes;
    Alcotest.test_case "flow control bounds queue" `Quick
      test_flow_control_bounds_queue;
    Alcotest.test_case "intra-op scaling" `Quick test_intra_op_scaling;
    Alcotest.test_case "paper T1 numbers" `Quick test_paper_t1;
    Alcotest.test_case "paper figure 2a" `Quick test_paper_fig2a;
    Alcotest.test_case "paper figure 2b log-log slope" `Quick
      test_paper_fig2b_loglog_slope;
    Alcotest.test_case "invalid parameters" `Quick test_invalid_params;
  ]
