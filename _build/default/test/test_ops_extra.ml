(* Additional operator tests: choose-plan, secondary indexes, and edge
   cases across the operator library. *)

module Iterator = Volcano.Iterator
module Tuple = Volcano_tuple.Tuple
module Value = Volcano_tuple.Value
module Support = Volcano_tuple.Support
module Ops = Volcano_ops
module Device = Volcano_storage.Device
module Bufpool = Volcano_storage.Bufpool
module Heap_file = Volcano_storage.Heap_file
module Rid = Volcano_storage.Rid
module Btree = Volcano_btree.Btree

let check = Alcotest.check

let make_store () =
  let buffer = Bufpool.create ~frames:64 ~page_size:512 () in
  let device = Device.create_virtual ~page_size:512 ~capacity:2048 () in
  (buffer, device)

let ints_of it = List.map (fun t -> Tuple.int_exn t 0) (Iterator.to_list it)

(* --- choose-plan --- *)

let test_choose_picks_alternative () =
  let decisions = ref [] in
  let alt i = Iterator.generate ~count:3 ~f:(fun j -> Tuple.of_ints [ (i * 10) + j ]) in
  let make choice =
    Ops.Choose_plan.iterator
      ~decide:(fun () ->
        decisions := choice :: !decisions;
        choice)
      ~alternatives:[| alt 0; alt 1; alt 2 |]
  in
  check (Alcotest.list Alcotest.int) "alternative 0" [ 0; 1; 2 ] (ints_of (make 0));
  check (Alcotest.list Alcotest.int) "alternative 2" [ 20; 21; 22 ]
    (ints_of (make 2));
  check Alcotest.int "decided once per open" 2 (List.length !decisions)

let test_choose_only_opens_chosen () =
  let opened = Array.make 2 false in
  let alt i =
    Iterator.make
      ~open_:(fun () -> opened.(i) <- true)
      ~next:(fun () -> None)
      ~close:(fun () -> ())
  in
  let it =
    Ops.Choose_plan.iterator ~decide:(fun () -> 1)
      ~alternatives:[| alt 0; alt 1 |]
  in
  ignore (Iterator.consume it);
  check Alcotest.bool "unchosen untouched" false opened.(0);
  check Alcotest.bool "chosen opened" true opened.(1)

let test_choose_out_of_range () =
  let it =
    Ops.Choose_plan.iterator ~decide:(fun () -> 5)
      ~alternatives:[| Iterator.empty |]
  in
  Alcotest.check_raises "range check"
    (Invalid_argument "Choose_plan: decision 5 out of range [0, 1)") (fun () ->
      Iterator.open_ it)

(* --- secondary index / fetch --- *)

let test_rid_roundtrip () =
  let rid = Rid.make ~device:3 ~page:1234 ~slot:17 in
  check Alcotest.bool "roundtrip" true
    (Rid.equal rid (Ops.Scan.decode_rid (Ops.Scan.encode_rid rid)))

let setup_indexed_table () =
  let buffer, device = make_store () in
  let file = Heap_file.create ~buffer ~device ~name:"t" in
  let tuples = List.init 200 (fun i -> Tuple.of_ints [ (i * 7) mod 200; i ]) in
  let _ = Ops.Scan.materialize (Iterator.of_list tuples) ~into:file in
  let tree = Btree.create ~buffer ~device ~name:"idx" ~cmp:String.compare in
  let key_of t = Printf.sprintf "%06d" (Tuple.int_exn t 0) in
  let entries = Ops.Scan.build_index ~tree ~key_of file in
  check Alcotest.int "indexed all" 200 entries;
  (file, tree)

let test_index_fetch_range () =
  let file, tree = setup_indexed_table () in
  let it =
    Ops.Scan.index_fetch ~tree ~file ~lo:(Btree.Inclusive "000010")
      ~hi:(Btree.Inclusive "000019")
  in
  let keys = ints_of it in
  check (Alcotest.list Alcotest.int) "keys in order" (List.init 10 (fun i -> 10 + i))
    keys

let test_index_fetch_skips_deleted () =
  let file, tree = setup_indexed_table () in
  (* Delete the record with key 12 from the heap but not from the index. *)
  let victim = ref None in
  Heap_file.iter file (fun rid record ->
      let t = Volcano_tuple.Serial.decode_bytes (Bytes.of_string record) in
      if Tuple.int_exn t 0 = 12 then victim := Some rid);
  (match !victim with
  | Some rid -> ignore (Heap_file.delete file rid)
  | None -> Alcotest.fail "victim not found");
  let it =
    Ops.Scan.index_fetch ~tree ~file ~lo:(Btree.Inclusive "000010")
      ~hi:(Btree.Inclusive "000014")
  in
  check (Alcotest.list Alcotest.int) "dangling entry skipped" [ 10; 11; 13; 14 ]
    (ints_of it)

(* --- operator edge cases --- *)

let test_sort_empty_and_single () =
  check (Alcotest.list Alcotest.int) "empty" []
    (ints_of (Ops.Sort.iterator ~cmp:(Support.compare_cols [ 0 ]) Iterator.empty));
  check (Alcotest.list Alcotest.int) "single" [ 42 ]
    (ints_of
       (Ops.Sort.iterator ~cmp:(Support.compare_cols [ 0 ])
          (Iterator.of_list [ Tuple.of_ints [ 42 ] ])))

let test_sort_duplicates_preserved () =
  let input = List.map (fun i -> Tuple.of_ints [ i mod 3; i ]) (List.init 30 Fun.id) in
  let out =
    Iterator.to_list
      (Ops.Sort.iterator ~cmp:(Support.compare_cols [ 0 ]) (Iterator.of_list input))
  in
  check Alcotest.int "multiset size" 30 (List.length out);
  (* 10 of each key *)
  List.iter
    (fun k ->
      check Alcotest.int
        (Printf.sprintf "key %d count" k)
        10
        (List.length (List.filter (fun t -> Tuple.int_exn t 0 = k) out)))
    [ 0; 1; 2 ]

let test_global_aggregate () =
  (* Empty group_by = one global group. *)
  let input = Iterator.generate ~count:100 ~f:(fun i -> Tuple.of_ints [ i ]) in
  let it =
    Ops.Aggregate.hash_iterator ~group_by:[]
      ~aggs:
        [
          Ops.Aggregate.Count;
          Ops.Aggregate.Sum (Volcano_tuple.Expr.col 0);
          Ops.Aggregate.Min (Volcano_tuple.Expr.col 0);
          Ops.Aggregate.Max (Volcano_tuple.Expr.col 0);
        ]
      input
  in
  match Iterator.to_list it with
  | [ t ] ->
      check Alcotest.int "count" 100 (Tuple.int_exn t 0);
      check Alcotest.int "sum" 4950 (Tuple.int_exn t 1);
      check Alcotest.int "min" 0 (Tuple.int_exn t 2);
      check Alcotest.int "max" 99 (Tuple.int_exn t 3)
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows)

let test_aggregate_empty_input () =
  let it =
    Ops.Aggregate.hash_iterator ~group_by:[ 0 ] ~aggs:[ Ops.Aggregate.Count ]
      Iterator.empty
  in
  check Alcotest.int "no groups" 0 (Iterator.consume it);
  let it =
    Ops.Aggregate.sorted_iterator ~group_by:[ 0 ] ~aggs:[ Ops.Aggregate.Count ]
      Iterator.empty
  in
  check Alcotest.int "no groups (sorted)" 0 (Iterator.consume it)

let test_aggregate_nulls_ignored () =
  let input =
    Iterator.of_list
      [ [| Value.Int 1; Value.Null |]; [| Value.Int 1; Value.Int 10 |] ]
  in
  let it =
    Ops.Aggregate.hash_iterator ~group_by:[ 0 ]
      ~aggs:
        [
          Ops.Aggregate.Sum (Volcano_tuple.Expr.col 1);
          Ops.Aggregate.Min (Volcano_tuple.Expr.col 1);
          Ops.Aggregate.Avg (Volcano_tuple.Expr.col 1);
        ]
      input
  in
  match Iterator.to_list it with
  | [ t ] ->
      check Alcotest.int "sum skips null" 10 (Tuple.int_exn t 1);
      check Alcotest.int "min skips null" 10 (Tuple.int_exn t 2);
      check (Alcotest.float 1e-9) "avg over non-null" 10.0
        (Value.float_exn (Tuple.get t 3))
  | _ -> Alcotest.fail "expected one group"

let test_match_empty_sides () =
  let some = List.init 5 (fun i -> Tuple.of_ints [ i; i ]) in
  let run kind ~left ~right =
    Iterator.to_list
      (Ops.Hash_match.iterator ~kind ~left_key:[ 0 ] ~right_key:[ 0 ]
         ~left_arity:2 ~right_arity:2 (Iterator.of_list left)
         (Iterator.of_list right))
  in
  check Alcotest.int "join empty right" 0
    (List.length (run Ops.Match_op.Join ~left:some ~right:[]));
  check Alcotest.int "join empty left" 0
    (List.length (run Ops.Match_op.Join ~left:[] ~right:some));
  check Alcotest.int "anti empty right keeps all" 5
    (List.length (run Ops.Match_op.Anti ~left:some ~right:[]));
  check Alcotest.int "full outer empty left pads" 5
    (List.length (run Ops.Match_op.Full_outer ~left:[] ~right:some));
  (* padding produced nulls on the left side *)
  List.iter
    (fun t -> check Alcotest.bool "left side null" true (Tuple.get t 0 = Value.Null))
    (run Ops.Match_op.Full_outer ~left:[] ~right:some)

let test_merge_of_empty_inputs () =
  let it =
    Ops.Merge.of_iterators ~cmp:(Support.compare_cols [ 0 ])
      [| Iterator.empty; Iterator.empty; Iterator.of_list [ Tuple.of_ints [ 1 ] ] |]
  in
  check (Alcotest.list Alcotest.int) "merge with empties" [ 1 ] (ints_of it)

let test_division_divisor_duplicates () =
  (* Duplicates in the divisor must not change the quotient. *)
  let pairs = [ (1, 10); (1, 11); (2, 10) ] in
  let dividend () =
    Iterator.of_list (List.map (fun (s, c) -> Tuple.of_ints [ s; c ]) pairs)
  in
  let divisor () =
    Iterator.of_list (List.map (fun c -> Tuple.of_ints [ c ]) [ 10; 10; 11; 11 ])
  in
  check (Alcotest.list Alcotest.int) "hash" [ 1 ]
    (ints_of
       (Ops.Division.hash_division ~quotient:[ 0 ] ~divisor_attrs:[ 1 ]
          ~divisor_key:[ 0 ] ~dividend:(dividend ()) ~divisor:(divisor ())));
  check (Alcotest.list Alcotest.int) "count" [ 1 ]
    (ints_of
       (Ops.Division.count_division ~quotient:[ 0 ] ~divisor_attrs:[ 1 ]
          ~divisor_key:[ 0 ] ~dividend:(dividend ()) ~divisor:(divisor ())))

let test_filter_inside_scan_equals_outside () =
  let buffer, device = make_store () in
  let file = Heap_file.create ~buffer ~device ~name:"t" in
  let _ =
    Ops.Scan.materialize
      (Iterator.generate ~count:100 ~f:(fun i -> Tuple.of_ints [ i ]))
      ~into:file
  in
  let pred t = Tuple.int_exn t 0 mod 7 = 0 in
  let inside = ints_of (Ops.Scan.heap_filtered ~pred file) in
  let outside = ints_of (Ops.Filter.iterator ~pred (Ops.Scan.heap file)) in
  check (Alcotest.list Alcotest.int) "same rows" inside outside

let test_nested_loops_empty_inner () =
  let it =
    Ops.Nested_loops.cross
      ~left:(Iterator.generate ~count:10 ~f:(fun i -> Tuple.of_ints [ i ]))
      ~right:Iterator.empty
  in
  check Alcotest.int "empty product" 0 (Iterator.consume it)

let suite =
  [
    Alcotest.test_case "choose-plan picks alternative" `Quick
      test_choose_picks_alternative;
    Alcotest.test_case "choose-plan opens only chosen" `Quick
      test_choose_only_opens_chosen;
    Alcotest.test_case "choose-plan range check" `Quick test_choose_out_of_range;
    Alcotest.test_case "rid encode/decode" `Quick test_rid_roundtrip;
    Alcotest.test_case "index fetch range" `Quick test_index_fetch_range;
    Alcotest.test_case "index fetch skips deleted" `Quick
      test_index_fetch_skips_deleted;
    Alcotest.test_case "sort empty and single" `Quick test_sort_empty_and_single;
    Alcotest.test_case "sort preserves duplicates" `Quick
      test_sort_duplicates_preserved;
    Alcotest.test_case "global aggregate" `Quick test_global_aggregate;
    Alcotest.test_case "aggregate empty input" `Quick test_aggregate_empty_input;
    Alcotest.test_case "aggregates ignore nulls" `Quick test_aggregate_nulls_ignored;
    Alcotest.test_case "match with empty sides" `Quick test_match_empty_sides;
    Alcotest.test_case "merge of empty inputs" `Quick test_merge_of_empty_inputs;
    Alcotest.test_case "division with divisor duplicates" `Quick
      test_division_divisor_duplicates;
    Alcotest.test_case "filter inside scan = outside" `Quick
      test_filter_inside_scan_equals_outside;
    Alcotest.test_case "nested loops empty inner" `Quick
      test_nested_loops_empty_inner;
  ]
