(* Unit and property tests for the utility modules. *)

module Sema = Volcano_util.Sema
module Latch = Volcano_util.Latch
module Rng = Volcano_util.Rng
module Zipf = Volcano_util.Zipf
module Binheap = Volcano_util.Binheap
module Stats = Volcano_util.Stats

let check = Alcotest.check

let test_sema_counting () =
  let s = Sema.create 2 in
  check Alcotest.int "initial" 2 (Sema.value s);
  Sema.acquire s;
  Sema.acquire s;
  check Alcotest.bool "exhausted" false (Sema.try_acquire s);
  Sema.release s;
  check Alcotest.bool "recovered" true (Sema.try_acquire s);
  Sema.release_n s 5;
  check Alcotest.int "bulk release" 5 (Sema.value s)

let test_sema_blocking () =
  let s = Sema.create 0 in
  let woke = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Sema.acquire s;
        Atomic.set woke true)
  in
  Unix.sleepf 0.02;
  check Alcotest.bool "still blocked" false (Atomic.get woke);
  Sema.release s;
  Domain.join d;
  check Alcotest.bool "woken" true (Atomic.get woke)

let test_latch () =
  let l = Latch.create 3 in
  check Alcotest.bool "closed" false (Latch.is_open l);
  Latch.count_down l;
  Latch.count_down l;
  check Alcotest.bool "still closed" false (Latch.is_open l);
  Latch.count_down l;
  Latch.await l;
  check Alcotest.bool "open" true (Latch.is_open l);
  (* Extra count_downs are harmless. *)
  Latch.count_down l;
  check Alcotest.bool "still open" true (Latch.is_open l)

let test_barrier () =
  let b = Latch.Barrier.create 4 in
  let counter = Atomic.make 0 in
  let domains =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            Atomic.incr counter;
            Latch.Barrier.await b;
            (* Second round: reuse the same barrier. *)
            Atomic.incr counter;
            Latch.Barrier.await b))
  in
  Atomic.incr counter;
  Latch.Barrier.await b;
  (* After the first barrier everyone must have done round one. *)
  check Alcotest.bool "first round complete" true (Atomic.get counter >= 4);
  Atomic.incr counter;
  Latch.Barrier.await b;
  List.iter Domain.join domains;
  check Alcotest.int "both rounds" 8 (Atomic.get counter)

let test_rng_determinism () =
  let a = Rng.create 17L and b = Rng.create 17L in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 3L in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    check Alcotest.bool "in range" true (x >= 0 && x < 7)
  done

let test_permutation () =
  let rng = Rng.create 5L in
  let p = Rng.permutation rng 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check
    (Alcotest.array Alcotest.int)
    "is a permutation"
    (Array.init 100 (fun i -> i))
    sorted

let test_zipf_skew () =
  let rng = Rng.create 11L in
  let z = Zipf.create ~n:100 ~theta:1.0 in
  let counts = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let x = Zipf.draw z rng in
    counts.(x) <- counts.(x) + 1
  done;
  (* Rank 0 must dominate rank 50 heavily under theta = 1. *)
  check Alcotest.bool "skewed" true (counts.(0) > counts.(50) * 5)

let test_zipf_uniform () =
  let rng = Rng.create 11L in
  let z = Zipf.create ~n:10 ~theta:0.0 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let x = Zipf.draw z rng in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c -> check Alcotest.bool "roughly uniform" true (c > 700 && c < 1300))
    counts

let test_binheap_sorts () =
  let heap = Binheap.of_list ~cmp:compare [ 5; 3; 8; 1; 9; 2; 7 ] in
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ]
    (Binheap.to_sorted_list heap)

let test_binheap_empty () =
  let heap = Binheap.create ~cmp:compare in
  check Alcotest.bool "empty" true (Binheap.is_empty heap);
  check (Alcotest.option Alcotest.int) "pop empty" None (Binheap.pop heap);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Binheap.pop_exn: empty heap")
    (fun () -> ignore (Binheap.pop_exn heap))

let prop_binheap =
  QCheck.Test.make ~name:"binheap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let heap = Binheap.of_list ~cmp:compare xs in
      Binheap.to_sorted_list heap = List.sort compare xs)

let test_stats () =
  let s = Stats.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.mean s);
  check (Alcotest.float 1e-6) "stddev" 2.13808993 (Stats.stddev s);
  check (Alcotest.float 1e-9) "min" 2.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 9.0 (Stats.max s)

let suite =
  [
    Alcotest.test_case "semaphore counting" `Quick test_sema_counting;
    Alcotest.test_case "semaphore blocking" `Quick test_sema_blocking;
    Alcotest.test_case "latch" `Quick test_latch;
    Alcotest.test_case "barrier reusable" `Quick test_barrier;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "permutation" `Quick test_permutation;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf uniform" `Quick test_zipf_uniform;
    Alcotest.test_case "binheap sorts" `Quick test_binheap_sorts;
    Alcotest.test_case "binheap empty" `Quick test_binheap_empty;
    QCheck_alcotest.to_alcotest prop_binheap;
    Alcotest.test_case "stats welford" `Quick test_stats;
  ]
