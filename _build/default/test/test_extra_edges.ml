(* Edge-case coverage: simulator conservation laws, serialization error
   paths, expression arithmetic corners, and iterator protocol checking
   through an exchange. *)

module Sim = Volcano_sim.Sim
module Serial = Volcano_tuple.Serial
module Value = Volcano_tuple.Value
module Tuple = Volcano_tuple.Tuple
module Expr = Volcano_tuple.Expr
module Iterator = Volcano.Iterator
module Exchange = Volcano.Exchange
module Group = Volcano.Group

let check = Alcotest.check

(* --- simulator conservation --- *)

let stage ?(processes = 1) ?(per_record = 1e-4) ?(send = 1e-5) ?(recv = 1e-5) () =
  { Sim.processes; per_record; per_packet_send = send; per_packet_recv = recv }

let prop_sim_conservation =
  QCheck.Test.make ~name:"sim: busy time matches the cost model" ~count:60
    QCheck.(
      quad (int_range 1 4) (int_range 1 4) (int_range 100 2000) (int_range 1 80))
    (fun (p0, p1, records, packet_size) ->
      let s0 = stage ~processes:p0 () and s1 = stage ~processes:p1 () in
      let r =
        Sim.run
          {
            Sim.stages = [| s0; s1 |];
            records;
            packet_size;
            flow_slack = Some 4;
            cpus = 4;
          }
      in
      let packets = (records + packet_size - 1) / packet_size in
      (* Producers round-robin independently, so total packets lie between
         the ideal count and one partial packet per producer-consumer
         pair. *)
      let max_packets = packets + (p0 * p1) in
      let expected_busy_0 packets =
        (float_of_int records *. s0.Sim.per_record)
        +. (float_of_int packets *. s0.Sim.per_packet_send)
      in
      let expected_busy_1 packets =
        (float_of_int records *. s1.Sim.per_record)
        +. (float_of_int packets *. s1.Sim.per_packet_recv)
      in
      r.Sim.packets_total >= packets
      && r.Sim.packets_total <= max_packets
      && abs_float (r.Sim.stage_busy.(0) -. expected_busy_0 r.Sim.packets_total)
         < 1e-9
      && abs_float (r.Sim.stage_busy.(1) -. expected_busy_1 r.Sim.packets_total)
         < 1e-9
      (* Elapsed can never beat the busiest stage divided by its processes,
         nor total work divided by the CPU count. *)
      && r.Sim.elapsed
         >= (r.Sim.stage_busy.(0) /. float_of_int p0) -. 1e-9
      && r.Sim.elapsed
         >= ((r.Sim.stage_busy.(0) +. r.Sim.stage_busy.(1)) /. 4.0) -. 1e-9)

let test_sim_three_stage_bottleneck () =
  (* The middle stage is 10x slower: elapsed tracks it. *)
  let r =
    Sim.run
      {
        Sim.stages =
          [|
            stage ~per_record:1e-5 ();
            stage ~per_record:1e-3 ();
            stage ~per_record:1e-5 ();
          |];
        records = 1000;
        packet_size = 10;
        flow_slack = Some 4;
        cpus = 4;
      }
  in
  check Alcotest.bool "bottleneck dominates" true
    (r.Sim.elapsed >= 1.0 && r.Sim.elapsed < 1.3)

(* --- serialization error paths --- *)

let test_serial_truncated () =
  let encoded = Serial.encode (Tuple.of_ints [ 1; 2; 3 ]) in
  let truncated = Bytes.sub encoded 0 (Bytes.length encoded - 4) in
  Alcotest.check_raises "truncated field"
    (Invalid_argument "Serial.decode: truncated field") (fun () ->
      ignore (Serial.decode_bytes truncated))

let test_serial_bad_tag () =
  let encoded = Serial.encode (Tuple.of_ints [ 1 ]) in
  Bytes.set_uint8 encoded 2 99;
  Alcotest.check_raises "bad tag" (Invalid_argument "Serial.decode: bad tag")
    (fun () -> ignore (Serial.decode_bytes encoded))

let test_serial_buffer_too_small () =
  let buf = Bytes.create 4 in
  Alcotest.check_raises "no room"
    (Invalid_argument "Serial.encode_into: buffer too small") (fun () ->
      ignore (Serial.encode_into (Tuple.of_ints [ 1; 2 ]) buf ~pos:0))

let test_serial_all_types () =
  let tuple =
    [|
      Value.Null;
      Value.Int min_int;
      Value.Int max_int;
      Value.Float (-0.0);
      Value.Float infinity;
      Value.Str "";
      Value.Str (String.make 1000 'z');
    |]
  in
  check Alcotest.bool "extremes roundtrip" true
    (Tuple.equal tuple (Serial.decode_bytes (Serial.encode tuple)))

(* --- expression corners --- *)

let test_expr_arithmetic_corners () =
  let t = [| Value.Int 7; Value.Float 2.5; Value.Null |] in
  let eval e = Expr.Compiled.num e t in
  check Alcotest.bool "int/float promotes" true
    (eval (Expr.Add (Expr.Col 0, Expr.Col 1)) = Value.Float 9.5);
  check Alcotest.bool "null propagates" true
    (eval (Expr.Mul (Expr.Col 0, Expr.Col 2)) = Value.Null);
  check Alcotest.bool "mod" true
    (eval (Expr.Mod (Expr.Col 0, Expr.Const (Value.Int 4))) = Value.Int 3);
  check Alcotest.bool "mod by zero is null" true
    (eval (Expr.Mod (Expr.Col 0, Expr.Const (Value.Int 0))) = Value.Null);
  check Alcotest.bool "neg int" true
    (eval (Expr.Neg (Expr.Col 0)) = Value.Int (-7));
  check Alcotest.bool "neg float" true
    (eval (Expr.Neg (Expr.Col 1)) = Value.Float (-2.5));
  check Alcotest.bool "neg null" true (eval (Expr.Neg (Expr.Col 2)) = Value.Null);
  (* Comparisons involving null are false both ways. *)
  check Alcotest.bool "null cmp" false
    (Expr.Interp.pred (Expr.Cmp (Expr.Eq, Expr.Col 2, Expr.Col 2)) t);
  check Alcotest.bool "is_null" true
    (Expr.Interp.pred (Expr.Is_null (Expr.Col 2)) t)

let test_expr_pp_smoke () =
  let p =
    let open Expr.Infix in
    (Expr.col 0 + Expr.int 1) * Expr.col 2 > Expr.int 9 && Expr.not_ Expr.False
  in
  let s = Format.asprintf "%a" Expr.pp_pred p in
  check Alcotest.bool "renders" true (String.length s > 10)

(* --- protocol checking through an exchange --- *)

let test_checked_exchange () =
  let cfg = Exchange.config ~degree:2 () in
  let it =
    Iterator.checked
      (Exchange.iterator cfg ~group:(Group.solo ()) ~input:(fun group ->
           let rank = Group.rank group in
           Iterator.generate ~count:25 ~f:(fun i -> Tuple.of_ints [ (rank * 25) + i ])))
  in
  check Alcotest.int "consume via checked" 50 (Iterator.consume it)

(* --- value printing / coercions --- *)

let test_value_strings () =
  check Alcotest.string "null" "NULL" (Value.to_string Value.Null);
  check Alcotest.string "int" "42" (Value.to_string (Value.Int 42));
  check Alcotest.string "str" "\"hi\"" (Value.to_string (Value.Str "hi"));
  check Alcotest.string "ty" "int" (Value.ty_to_string Value.Tint);
  Alcotest.check_raises "coercion error" (Invalid_argument "Value.int_exn: \"x\"")
    (fun () -> ignore (Value.int_exn (Value.Str "x")));
  check (Alcotest.float 1e-9) "int as float" 3.0 (Value.float_exn (Value.Int 3))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_sim_conservation;
    Alcotest.test_case "sim three-stage bottleneck" `Quick
      test_sim_three_stage_bottleneck;
    Alcotest.test_case "serial truncated input" `Quick test_serial_truncated;
    Alcotest.test_case "serial bad tag" `Quick test_serial_bad_tag;
    Alcotest.test_case "serial buffer too small" `Quick
      test_serial_buffer_too_small;
    Alcotest.test_case "serial extreme values" `Quick test_serial_all_types;
    Alcotest.test_case "expression corners" `Quick test_expr_arithmetic_corners;
    Alcotest.test_case "expression printing" `Quick test_expr_pp_smoke;
    Alcotest.test_case "checked iterator over exchange" `Quick
      test_checked_exchange;
    Alcotest.test_case "value printing and coercions" `Quick test_value_strings;
  ]
