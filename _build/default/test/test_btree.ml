(* B+-tree tests: ordering, duplicates, splits, deletes with rebalancing,
   range scans, and a property test against a sorted-list model. *)

module Btree = Volcano_btree.Btree
module Bufpool = Volcano_storage.Bufpool
module Device = Volcano_storage.Device

let check = Alcotest.check

(* Keys are textual; pad numbers so the string order matches numeric. *)
let key i = Printf.sprintf "%08d" i
let value i = Printf.sprintf "v%d" i

let make_tree ?(page_size = 256) () =
  let pool = Bufpool.create ~frames:128 ~page_size () in
  let dev = Device.create_virtual ~page_size ~capacity:4096 () in
  Btree.create ~buffer:pool ~device:dev ~name:"idx" ~cmp:String.compare

let test_insert_lookup () =
  let t = make_tree () in
  for i = 0 to 99 do
    Btree.insert t ~key:(key i) ~value:(value i)
  done;
  check Alcotest.int "count" 100 (Btree.entry_count t);
  Btree.check_invariants t;
  for i = 0 to 99 do
    check
      (Alcotest.list Alcotest.string)
      (Printf.sprintf "lookup %d" i)
      [ value i ]
      (Btree.lookup t (key i))
  done;
  check (Alcotest.list Alcotest.string) "missing" [] (Btree.lookup t (key 1000))

let test_splits_build_height () =
  let t = make_tree () in
  for i = 0 to 999 do
    Btree.insert t ~key:(key i) ~value:(value i)
  done;
  Btree.check_invariants t;
  check Alcotest.bool "grew levels" true (Btree.height t >= 3);
  (* Full scan in order. *)
  let keys = List.map fst (Btree.to_list t) in
  check (Alcotest.list Alcotest.string) "sorted scan"
    (List.init 1000 key) keys

let test_reverse_and_random_insert_orders () =
  List.iter
    (fun seed ->
      let t = make_tree () in
      let order = Volcano_util.Rng.permutation (Volcano_util.Rng.create seed) 500 in
      Array.iter (fun i -> Btree.insert t ~key:(key i) ~value:(value i)) order;
      Btree.check_invariants t;
      check (Alcotest.list Alcotest.string)
        (Printf.sprintf "sorted after random insert (seed %Ld)" seed)
        (List.init 500 key)
        (List.map fst (Btree.to_list t)))
    [ 1L; 2L; 3L ]

let test_duplicates () =
  let t = make_tree () in
  for i = 0 to 9 do
    for copy = 0 to 4 do
      Btree.insert t ~key:(key i) ~value:(Printf.sprintf "c%d" copy)
    done
  done;
  Btree.check_invariants t;
  check Alcotest.int "entries" 50 (Btree.entry_count t);
  check
    (Alcotest.list Alcotest.string)
    "all copies in value order"
    [ "c0"; "c1"; "c2"; "c3"; "c4" ]
    (Btree.lookup t (key 3));
  (* Delete a specific duplicate. *)
  check Alcotest.bool "delete c2" true
    (Btree.delete t ~key:(key 3) ~value:"c2" ());
  check
    (Alcotest.list Alcotest.string)
    "c2 removed"
    [ "c0"; "c1"; "c3"; "c4" ]
    (Btree.lookup t (key 3))

let test_duplicates_spanning_leaves () =
  let t = make_tree () in
  (* Enough identical keys to span multiple leaves. *)
  for copy = 0 to 199 do
    Btree.insert t ~key:"same-key" ~value:(Printf.sprintf "%06d" copy)
  done;
  Btree.check_invariants t;
  check Alcotest.int "all found" 200 (List.length (Btree.lookup t "same-key"))

let test_delete_rebalances () =
  let t = make_tree () in
  for i = 0 to 499 do
    Btree.insert t ~key:(key i) ~value:(value i)
  done;
  (* Delete most entries and verify structure remains valid throughout. *)
  for i = 0 to 449 do
    check Alcotest.bool (Printf.sprintf "delete %d" i) true
      (Btree.delete t ~key:(key i) ())
  done;
  Btree.check_invariants t;
  check Alcotest.int "remaining" 50 (Btree.entry_count t);
  for i = 450 to 499 do
    check (Alcotest.list Alcotest.string) "survivor" [ value i ]
      (Btree.lookup t (key i))
  done;
  check Alcotest.bool "delete missing" false (Btree.delete t ~key:(key 0) ())

let test_delete_everything () =
  let t = make_tree () in
  for i = 0 to 299 do
    Btree.insert t ~key:(key i) ~value:(value i)
  done;
  for i = 299 downto 0 do
    ignore (Btree.delete t ~key:(key i) ())
  done;
  Btree.check_invariants t;
  check Alcotest.int "empty" 0 (Btree.entry_count t);
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string)) "scan empty"
    [] (Btree.to_list t);
  (* The tree remains usable. *)
  Btree.insert t ~key:(key 1) ~value:"again";
  check (Alcotest.list Alcotest.string) "reusable" [ "again" ]
    (Btree.lookup t (key 1))

let test_range_scans () =
  let t = make_tree () in
  for i = 0 to 99 do
    Btree.insert t ~key:(key (i * 2)) ~value:(value i)
  done;
  let collect lo hi =
    let c = Btree.range t ~lo ~hi in
    let rec drain acc =
      match Btree.next c with None -> List.rev acc | Some (k, _) -> drain (k :: acc)
    in
    drain []
  in
  check (Alcotest.list Alcotest.string) "inclusive bounds"
    [ key 10; key 12; key 14 ]
    (collect (Btree.Inclusive (key 10)) (Btree.Inclusive (key 14)));
  check (Alcotest.list Alcotest.string) "exclusive bounds"
    [ key 12 ]
    (collect (Btree.Exclusive (key 10)) (Btree.Exclusive (key 14)));
  check (Alcotest.list Alcotest.string) "between stored keys"
    [ key 10; key 12 ]
    (collect (Btree.Inclusive (key 9)) (Btree.Inclusive (key 13)));
  check Alcotest.int "unbounded" 100
    (List.length (collect Btree.Unbounded Btree.Unbounded));
  check (Alcotest.list Alcotest.string) "empty range" []
    (collect (Btree.Inclusive (key 11)) (Btree.Inclusive (key 11)))

(* Property: a random sequence of inserts and deletes matches a sorted
   association list model. *)
let prop_btree_model =
  QCheck.Test.make ~name:"btree matches a multiset model" ~count:30
    QCheck.(list (pair bool (int_bound 60)))
    (fun ops ->
      let t = make_tree () in
      let model = ref [] in
      List.iter
        (fun (insert, k) ->
          if insert then begin
            Btree.insert t ~key:(key k) ~value:(value k);
            model := (key k, value k) :: !model
          end
          else if List.mem_assoc (key k) !model then begin
            let _ = Btree.delete t ~key:(key k) () in
            (* Remove one matching entry from the model. *)
            let removed = ref false in
            model :=
              List.filter
                (fun (mk, _) ->
                  if (not !removed) && String.equal mk (key k) then begin
                    removed := true;
                    false
                  end
                  else true)
                !model
          end)
        ops;
      Btree.check_invariants t;
      let expected =
        List.sort compare !model
      in
      List.sort compare (Btree.to_list t) = expected)

let test_open_existing () =
  let page_size = 256 in
  let pool = Bufpool.create ~frames:128 ~page_size () in
  let dev = Device.create_virtual ~page_size ~capacity:4096 () in
  let t = Btree.create ~buffer:pool ~device:dev ~name:"idx" ~cmp:String.compare in
  for i = 0 to 99 do
    Btree.insert t ~key:(key i) ~value:(value i)
  done;
  let t2 = Btree.open_existing ~buffer:pool ~device:dev ~name:"idx" ~cmp:String.compare in
  check Alcotest.int "entries persisted" 100 (Btree.entry_count t2);
  check (Alcotest.list Alcotest.string) "lookup via reopened" [ value 42 ]
    (Btree.lookup t2 (key 42))

let suite =
  [
    Alcotest.test_case "insert + lookup" `Quick test_insert_lookup;
    Alcotest.test_case "splits build height" `Quick test_splits_build_height;
    Alcotest.test_case "random insert orders" `Quick
      test_reverse_and_random_insert_orders;
    Alcotest.test_case "duplicate keys" `Quick test_duplicates;
    Alcotest.test_case "duplicates spanning leaves" `Quick
      test_duplicates_spanning_leaves;
    Alcotest.test_case "delete rebalances" `Quick test_delete_rebalances;
    Alcotest.test_case "delete everything" `Quick test_delete_everything;
    Alcotest.test_case "range scans" `Quick test_range_scans;
    QCheck_alcotest.to_alcotest prop_btree_model;
    Alcotest.test_case "open existing" `Quick test_open_existing;
  ]
