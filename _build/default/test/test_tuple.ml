(* Tests for values, schemas, tuples, expressions and serialization. *)

module Value = Volcano_tuple.Value
module Schema = Volcano_tuple.Schema
module Tuple = Volcano_tuple.Tuple
module Expr = Volcano_tuple.Expr
module Support = Volcano_tuple.Support
module Serial = Volcano_tuple.Serial

let check = Alcotest.check

(* QCheck generators. *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun x -> Value.Int x) int;
        map (fun x -> Value.Float x) (float_bound_inclusive 1e6);
        map (fun s -> Value.Str s) (string_size (int_bound 20));
      ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

let tuple_gen = QCheck.Gen.(map Array.of_list (list_size (int_range 0 8) value_gen))
let tuple_arb = QCheck.make ~print:Tuple.to_string tuple_gen

let test_value_order () =
  check Alcotest.bool "null first" true (Value.compare Value.Null (Value.Int 0) < 0);
  check Alcotest.bool "int order" true
    (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  check Alcotest.bool "str order" true
    (Value.compare (Value.Str "a") (Value.Str "b") < 0);
  check Alcotest.bool "cross type" true
    (Value.compare (Value.Int 999) (Value.Str "") < 0)

let prop_value_total_order =
  QCheck.Test.make ~name:"value compare is antisymmetric" ~count:500
    (QCheck.pair value_arb value_arb)
    (fun (a, b) ->
      let c1 = Value.compare a b and c2 = Value.compare b a in
      (c1 = 0 && c2 = 0) || (c1 < 0 && c2 > 0) || (c1 > 0 && c2 < 0))

let prop_value_hash_consistent =
  QCheck.Test.make ~name:"equal values hash equally" ~count:500 value_arb
    (fun v -> Value.hash v = Value.hash v)

let test_schema () =
  let s = Schema.of_names [ ("a", Value.Tint); ("b", Value.Tstr) ] in
  check Alcotest.int "arity" 2 (Schema.arity s);
  check Alcotest.int "index" 1 (Schema.index s "b");
  check Alcotest.string "name" "a" (Schema.field_name s 0);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Schema.make: duplicate field a") (fun () ->
      ignore (Schema.of_names [ ("a", Value.Tint); ("a", Value.Tstr) ]))

let test_schema_concat_renames () =
  let a = Schema.of_names [ ("x", Value.Tint); ("y", Value.Tint) ] in
  let b = Schema.of_names [ ("y", Value.Tint); ("z", Value.Tint) ] in
  let c = Schema.concat a b in
  check Alcotest.int "arity" 4 (Schema.arity c);
  check Alcotest.string "renamed" "y'" (Schema.field_name c 2)

let test_tuple_ops () =
  let t = Tuple.of_ints [ 10; 20; 30 ] in
  check Alcotest.int "get" 20 (Tuple.int_exn t 1);
  check Alcotest.int "project" 30 (Tuple.int_exn (Tuple.project t [ 2; 0 ]) 0);
  let u = Tuple.concat t (Tuple.of_ints [ 40 ]) in
  check Alcotest.int "concat arity" 4 (Tuple.arity u);
  check Alcotest.bool "lexicographic" true
    (Tuple.compare (Tuple.of_ints [ 1; 2 ]) (Tuple.of_ints [ 1; 3 ]) < 0);
  check Alcotest.bool "prefix smaller" true
    (Tuple.compare (Tuple.of_ints [ 1 ]) (Tuple.of_ints [ 1; 0 ]) < 0)

(* The paper's dual predicate mechanism: interpreted and compiled paths
   must agree on every expression and tuple. *)
let pred_gen =
  let open QCheck.Gen in
  let num_gen =
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 0 then
              oneof [ map Expr.col (int_bound 3); map Expr.int (int_range (-50) 50) ]
            else
              frequency
                [
                  (2, map Expr.col (int_bound 3));
                  (2, map Expr.int (int_range (-50) 50));
                  ( 1,
                    map2
                      (fun a b -> Expr.Add (a, b))
                      (self (n / 2)) (self (n / 2)) );
                  ( 1,
                    map2
                      (fun a b -> Expr.Sub (a, b))
                      (self (n / 2)) (self (n / 2)) );
                  ( 1,
                    map2
                      (fun a b -> Expr.Mul (a, b))
                      (self (n / 2)) (self (n / 2)) );
                  ( 1,
                    map2
                      (fun a b -> Expr.Div (a, b))
                      (self (n / 2)) (self (n / 2)) );
                ])
          (min n 6))
  in
  let cmp_gen =
    oneofl [ Expr.Eq; Expr.Ne; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ]
  in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            map3 (fun op a b -> Expr.Cmp (op, a, b)) cmp_gen num_gen num_gen
          else
            frequency
              [
                (3, map3 (fun op a b -> Expr.Cmp (op, a, b)) cmp_gen num_gen num_gen);
                ( 1,
                  map2 (fun a b -> Expr.And (a, b)) (self (n / 2)) (self (n / 2)) );
                (1, map2 (fun a b -> Expr.Or (a, b)) (self (n / 2)) (self (n / 2)));
                (1, map (fun a -> Expr.Not a) (self (n - 1)));
                (1, map (fun e -> Expr.Is_null e) num_gen);
              ])
        (min n 5))

let int_tuple_gen =
  QCheck.Gen.(map (fun xs -> Tuple.of_ints xs) (list_repeat 4 (int_range (-50) 50)))

let prop_interpreted_equals_compiled =
  QCheck.Test.make ~name:"interpreted = compiled predicates" ~count:1000
    (QCheck.make
       QCheck.Gen.(pair pred_gen int_tuple_gen))
    (fun (pred, tuple) ->
      Expr.Interp.pred pred tuple = Expr.Compiled.pred pred tuple)

let test_expr_eval () =
  let open Expr.Infix in
  let t = Tuple.of_ints [ 3; 7 ] in
  let p = Expr.col 0 + Expr.int 4 = Expr.col 1 in
  check Alcotest.bool "3+4=7" true (Expr.Interp.pred p t);
  let q = Expr.col 0 * Expr.col 1 > Expr.int 20 in
  check Alcotest.bool "21>20" true (Expr.Compiled.pred q t);
  let div_zero = Expr.Div (Expr.col 0, Expr.int 0) in
  check Alcotest.bool "x/0 is null" true
    (Expr.Interp.pred (Expr.Is_null div_zero) t)

let test_str_prefix () =
  let t = [| Value.Str "hello world" |] in
  check Alcotest.bool "prefix" true
    (Expr.Compiled.pred (Expr.Str_prefix ("hello", Expr.col 0)) t);
  check Alcotest.bool "not prefix" false
    (Expr.Interp.pred (Expr.Str_prefix ("world", Expr.col 0)) t)

let prop_serial_roundtrip =
  QCheck.Test.make ~name:"serialize/deserialize roundtrip" ~count:1000 tuple_arb
    (fun t -> Tuple.equal t (Serial.decode_bytes (Serial.encode t)))

let test_serial_offset () =
  let t1 = Tuple.of_ints [ 1; 2 ] and t2 = Tuple.of_ints [ 3 ] in
  let buf = Bytes.create 100 in
  let n1 = Serial.encode_into t1 buf ~pos:0 in
  let _ = Serial.encode_into t2 buf ~pos:n1 in
  check Alcotest.bool "first" true (Tuple.equal t1 (Serial.decode buf ~pos:0));
  check Alcotest.bool "second" true (Tuple.equal t2 (Serial.decode buf ~pos:n1))

let test_support_comparators () =
  let cmp = Support.compare_on [ (0, Support.Asc); (1, Support.Desc) ] in
  let a = Tuple.of_ints [ 1; 5 ] and b = Tuple.of_ints [ 1; 9 ] in
  check Alcotest.bool "desc second key" true (cmp a b > 0);
  check Alcotest.bool "equal" true (cmp a a = 0);
  check Alcotest.bool "hash consistent" true
    (Support.hash_on [ 0; 1 ] a = Support.hash_on [ 0; 1 ] a)

let test_partition_fns () =
  let rr = Support.Partition.round_robin ~consumers:3 () in
  let got = List.init 7 (fun _ -> rr (Tuple.of_ints [ 0 ])) in
  check (Alcotest.list Alcotest.int) "round robin" [ 0; 1; 2; 0; 1; 2; 0 ] got;
  let h = Support.Partition.hash ~consumers:4 ~on:[ 0 ] () in
  for i = 0 to 100 do
    let p = h (Tuple.of_ints [ i ]) in
    check Alcotest.bool "hash in range" true (p >= 0 && p < 4)
  done;
  let r =
    Support.Partition.range ~consumers:3 ~on:0
      ~bounds:[| Value.Int 10; Value.Int 20 |]
      ()
  in
  check Alcotest.int "low" 0 (r (Tuple.of_ints [ 5 ]));
  check Alcotest.int "boundary" 0 (r (Tuple.of_ints [ 10 ]));
  check Alcotest.int "mid" 1 (r (Tuple.of_ints [ 15 ]));
  check Alcotest.int "high" 2 (r (Tuple.of_ints [ 99 ]))

let suite =
  [
    Alcotest.test_case "value ordering" `Quick test_value_order;
    QCheck_alcotest.to_alcotest prop_value_total_order;
    QCheck_alcotest.to_alcotest prop_value_hash_consistent;
    Alcotest.test_case "schema basics" `Quick test_schema;
    Alcotest.test_case "schema concat renames" `Quick test_schema_concat_renames;
    Alcotest.test_case "tuple operations" `Quick test_tuple_ops;
    QCheck_alcotest.to_alcotest prop_interpreted_equals_compiled;
    Alcotest.test_case "expression evaluation" `Quick test_expr_eval;
    Alcotest.test_case "string prefix predicate" `Quick test_str_prefix;
    QCheck_alcotest.to_alcotest prop_serial_roundtrip;
    Alcotest.test_case "serialization at offsets" `Quick test_serial_offset;
    Alcotest.test_case "support comparators" `Quick test_support_comparators;
    Alcotest.test_case "partition functions" `Quick test_partition_fns;
  ]
