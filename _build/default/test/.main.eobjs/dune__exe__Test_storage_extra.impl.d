test/test_storage_extra.ml: Alcotest Bytes Fun Gen Hashtbl List Printf QCheck QCheck_alcotest String Volcano Volcano_ops Volcano_storage Volcano_tuple
