test/main.mli:
