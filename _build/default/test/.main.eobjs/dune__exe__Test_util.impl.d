test/test_util.ml: Alcotest Array Atomic Domain List QCheck QCheck_alcotest Unix Volcano_util
