test/test_wisconsin.ml: Alcotest Array Hashtbl List Option Printf Volcano_plan Volcano_tuple Volcano_wisconsin
