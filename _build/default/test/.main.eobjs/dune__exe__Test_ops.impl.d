test/test_ops.ml: Alcotest Array Bytes Fmt Fun List Printf QCheck QCheck_alcotest String Volcano Volcano_btree Volcano_ops Volcano_storage Volcano_tuple Volcano_util
