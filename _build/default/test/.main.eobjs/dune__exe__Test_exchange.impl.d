test/test_exchange.ml: Alcotest Array Domain Hashtbl List Option Printf Volcano Volcano_tuple
