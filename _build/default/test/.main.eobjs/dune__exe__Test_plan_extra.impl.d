test/test_plan_extra.ml: Alcotest Fun List String Volcano Volcano_ops Volcano_plan Volcano_tuple Volcano_wisconsin
