test/test_exchange_extra.ml: Alcotest Array Fun List Option Printf Volcano Volcano_ops Volcano_tuple
