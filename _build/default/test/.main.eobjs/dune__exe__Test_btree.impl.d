test/test_btree.ml: Alcotest Array List Printf QCheck QCheck_alcotest String Volcano_btree Volcano_storage Volcano_util
