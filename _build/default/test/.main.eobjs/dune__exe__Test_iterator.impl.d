test/test_iterator.ml: Alcotest List Volcano Volcano_tuple
