test/test_extra_edges.ml: Alcotest Array Bytes Format QCheck QCheck_alcotest String Volcano Volcano_sim Volcano_tuple
