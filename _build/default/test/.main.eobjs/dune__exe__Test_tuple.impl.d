test/test_tuple.ml: Alcotest Array Bytes List QCheck QCheck_alcotest Volcano_tuple
