test/test_sim.ml: Alcotest Array List Printf Volcano_sim
