test/test_plan.ml: Alcotest Bytes Fun List String Volcano Volcano_ops Volcano_plan Volcano_storage Volcano_tuple
