test/test_ops_extra.ml: Alcotest Array Bytes Fun List Printf String Volcano Volcano_btree Volcano_ops Volcano_storage Volcano_tuple
