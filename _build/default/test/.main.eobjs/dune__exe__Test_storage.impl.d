test/test_storage.ml: Alcotest Array Atomic Bytes Char Domain Filename Fun Hashtbl Int64 List Printf QCheck QCheck_alcotest String Sys Volcano_storage Volcano_util
