test/test_random_plans.ml: Fun Int64 List QCheck QCheck_alcotest Volcano Volcano_ops Volcano_plan Volcano_tuple Volcano_util
