(* Tests for the exchange operator: all parallelism modes, end-of-stream
   protocol, flow control, broadcast, merge streams, no-fork interchange,
   early close, and the section 4.3 three-group pipeline example. *)

module Tuple = Volcano_tuple.Tuple
module Value = Volcano_tuple.Value
module Iterator = Volcano.Iterator
module Exchange = Volcano.Exchange
module Group = Volcano.Group
module Port = Volcano.Port
module Packet = Volcano.Packet

let check = Alcotest.check
let tuple_of_int i = Tuple.of_ints [ i; i * 2; i * 3; i * 4 ]

let ints_of_iterator iterator =
  List.map (fun t -> Tuple.int_exn t 0) (Iterator.to_list iterator)

let sorted_ints iterator = List.sort compare (ints_of_iterator iterator)

let range n = List.init n (fun i -> i)

(* A single-producer vertical pipeline: records cross one process boundary
   unchanged and in order. *)
let test_vertical_pipeline () =
  let cfg = Exchange.config ~degree:1 () in
  let iterator =
    Exchange.iterator cfg ~group:(Group.solo ()) ~input:(fun _ ->
        Iterator.generate ~count:1000 ~f:tuple_of_int)
  in
  check (Alcotest.list Alcotest.int) "in order" (range 1000)
    (ints_of_iterator iterator)

let test_degree_n_multiset degree =
  let cfg = Exchange.config ~degree ~packet_size:7 () in
  (* Each producer generates a distinct slice. *)
  let per_producer = 500 in
  let iterator =
    Exchange.iterator cfg ~group:(Group.solo ()) ~input:(fun group ->
        let rank = Group.rank group in
        Iterator.generate ~count:per_producer ~f:(fun i ->
            tuple_of_int ((rank * per_producer) + i)))
  in
  check (Alcotest.list Alcotest.int) "multiset preserved"
    (range (degree * per_producer))
    (sorted_ints iterator)

let test_three_producers () = test_degree_n_multiset 3
let test_eight_producers () = test_degree_n_multiset 8

let test_packet_size_one () =
  let cfg = Exchange.config ~degree:2 ~packet_size:1 () in
  let iterator =
    Exchange.iterator cfg ~group:(Group.solo ()) ~input:(fun group ->
        let rank = Group.rank group in
        Iterator.generate ~count:50 ~f:(fun i -> tuple_of_int ((rank * 50) + i)))
  in
  check (Alcotest.list Alcotest.int) "packet size 1" (range 100)
    (sorted_ints iterator)

let test_flow_control_disabled () =
  let cfg = Exchange.config ~degree:2 ~flow_slack:None () in
  let iterator =
    Exchange.iterator cfg ~group:(Group.solo ()) ~input:(fun group ->
        let rank = Group.rank group in
        Iterator.generate ~count:300 ~f:(fun i -> tuple_of_int ((rank * 300) + i)))
  in
  check (Alcotest.list Alcotest.int) "no flow control" (range 600)
    (sorted_ints iterator)

let test_central_fork () =
  let cfg = Exchange.config ~degree:4 ~fork_mode:Exchange.Fork_central () in
  let iterator =
    Exchange.iterator cfg ~group:(Group.solo ()) ~input:(fun group ->
        let rank = Group.rank group in
        Iterator.generate ~count:100 ~f:(fun i -> tuple_of_int ((rank * 100) + i)))
  in
  check (Alcotest.list Alcotest.int) "central fork" (range 400)
    (sorted_ints iterator)

(* Early close: take 10 records from an effectively unbounded producer and
   close; producers must be cancelled and joined without hanging. *)
let test_early_close () =
  let cfg = Exchange.config ~degree:2 ~flow_slack:(Some 2) ~packet_size:5 () in
  let iterator =
    Exchange.iterator cfg ~group:(Group.solo ()) ~input:(fun _ ->
        Iterator.generate ~count:10_000_000 ~f:tuple_of_int)
  in
  Iterator.open_ iterator;
  let taken = ref 0 in
  for _ = 1 to 10 do
    match Iterator.next iterator with
    | Some _ -> incr taken
    | None -> ()
  done;
  Iterator.close iterator;
  check Alcotest.int "took 10" 10 !taken

(* Broadcast: every consumer sees the whole stream.  With a solo consumer
   group this means the consumer sees each record exactly once per...
   producer; use 2 producers and verify duplication count. *)
let test_broadcast_solo () =
  let cfg = Exchange.config ~degree:2 ~partition:Exchange.Broadcast () in
  let iterator =
    Exchange.iterator cfg ~group:(Group.solo ()) ~input:(fun _ ->
        Iterator.generate ~count:100 ~f:tuple_of_int)
  in
  (* Each of the 2 producers sends all 100 records to the single consumer. *)
  let values = sorted_ints iterator in
  check Alcotest.int "record count" 200 (List.length values);
  let expected = List.sort compare (range 100 @ range 100) in
  check (Alcotest.list Alcotest.int) "each record twice" expected values

(* Hash partitioning with two consumer processes: build a nested pipeline
   where an outer exchange creates a 2-member consumer group for an inner
   exchange.  Verifies partition disjointness via a marker column. *)
let test_hash_partition_two_consumers () =
  let inner_id = Exchange.fresh_id () in
  let outer_cfg = Exchange.config ~degree:2 ~flow_slack:(Some 4) () in
  let inner_cfg = Exchange.config ~degree:3 ~partition:(Exchange.Hash_on [ 0 ]) () in
  (* Outer producers: 2 processes, each consuming its partition of the inner
     exchange (3 generator producers, hash-partitioned) and tagging records
     with the consumer rank in a fresh column. *)
  let outer =
    Exchange.iterator outer_cfg ~group:(Group.solo ()) ~input:(fun group ->
        let rank = Group.rank group in
        let inner =
          Exchange.iterator ~id:inner_id inner_cfg ~group ~input:(fun igroup ->
              let irank = Group.rank igroup in
              Iterator.generate ~count:200 ~f:(fun i ->
                  tuple_of_int ((irank * 200) + i)))
        in
        let tag tuple = Array.append tuple [| Value.Int rank |] in
        Iterator.make
          ~open_:(fun () -> Iterator.open_ inner)
          ~next:(fun () -> Option.map tag (Iterator.next inner))
          ~close:(fun () -> Iterator.close inner))
  in
  let tuples = Iterator.to_list outer in
  check Alcotest.int "total records" 600 (List.length tuples);
  (* Hash partitioning must be disjoint and exhaustive: a key goes to
     exactly one consumer rank. *)
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun t ->
      let key = Tuple.int_exn t 0 in
      let consumer = Tuple.int_exn t 4 in
      match Hashtbl.find_opt by_key key with
      | None -> Hashtbl.add by_key key consumer
      | Some c ->
          check Alcotest.int (Printf.sprintf "key %d same consumer" key) c consumer)
    tuples;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) by_key [] in
  check Alcotest.int "distinct keys" 600 (List.length keys)

(* Round-robin across two consumers balances exactly. *)
let test_round_robin_balance () =
  let inner_id = Exchange.fresh_id () in
  let outer_cfg = Exchange.config ~degree:2 () in
  let inner_cfg = Exchange.config ~degree:1 ~partition:Exchange.Round_robin () in
  let outer =
    Exchange.iterator outer_cfg ~group:(Group.solo ()) ~input:(fun group ->
        let rank = Group.rank group in
        let inner =
          Exchange.iterator ~id:inner_id inner_cfg ~group ~input:(fun _ ->
              Iterator.generate ~count:1000 ~f:tuple_of_int)
        in
        let count = ref 0 in
        Iterator.make
          ~open_:(fun () -> Iterator.open_ inner)
          ~next:(fun () ->
            match Iterator.next inner with
            | Some _ ->
                incr count;
                Some (Tuple.of_ints [ rank ])
            | None -> None)
          ~close:(fun () -> Iterator.close inner))
  in
  let per_consumer = Array.make 2 0 in
  Iterator.iter
    (fun t ->
      let rank = Tuple.int_exn t 0 in
      per_consumer.(rank) <- per_consumer.(rank) + 1)
    outer;
  check Alcotest.int "consumer 0" 500 per_consumer.(0);
  check Alcotest.int "consumer 1" 500 per_consumer.(1)

(* Merge streams: producers generate sorted runs; the per-producer streams
   must deliver each producer's records separately and in order. *)
let test_producer_streams () =
  let cfg = Exchange.config ~degree:3 ~packet_size:10 () in
  let streams =
    Exchange.producer_streams cfg ~group:(Group.solo ()) ~input:(fun group ->
        let rank = Group.rank group in
        Iterator.generate ~count:100 ~f:(fun i ->
            Tuple.of_ints [ (i * 3) + rank; rank ]))
  in
  check Alcotest.int "three streams" 3 (Array.length streams);
  Array.iter Iterator.open_ streams;
  let drain stream =
    let rec step acc =
      match Iterator.next stream with
      | None -> List.rev acc
      | Some t -> step (Tuple.int_exn t 0 :: acc)
    in
    step []
  in
  let all = Array.map drain streams in
  Array.iter Iterator.close streams;
  Array.iteri
    (fun producer values ->
      check Alcotest.int
        (Printf.sprintf "producer %d count" producer)
        100 (List.length values);
      let sorted = List.sort compare values in
      check (Alcotest.list Alcotest.int)
        (Printf.sprintf "producer %d in order" producer)
        sorted values;
      List.iter
        (fun v ->
          check Alcotest.int
            (Printf.sprintf "producer %d congruence" producer)
            producer (v mod 3))
        values)
    all

(* No-fork interchange in a two-member group driven by an outer exchange:
   each member scans a half of the data and repartitions by hash so that
   each member ends up with its hash partition. *)
let test_interchange () =
  let inner_id = Exchange.fresh_id () in
  let outer_cfg = Exchange.config ~degree:2 () in
  let inner_cfg =
    Exchange.config ~degree:2 ~packet_size:5
      ~partition:(Exchange.Hash_on [ 0 ]) ()
  in
  let outer =
    Exchange.iterator outer_cfg ~group:(Group.solo ()) ~input:(fun group ->
        let rank = Group.rank group in
        let own_scan =
          Iterator.generate ~count:500 ~f:(fun i -> tuple_of_int ((rank * 500) + i))
        in
        let exchanged =
          Exchange.interchange ~id:inner_id inner_cfg ~group ~input:own_scan
        in
        let tag tuple = Array.append tuple [| Value.Int rank |] in
        Iterator.make
          ~open_:(fun () -> Iterator.open_ exchanged)
          ~next:(fun () -> Option.map tag (Iterator.next exchanged))
          ~close:(fun () -> Iterator.close exchanged))
  in
  let tuples = Iterator.to_list outer in
  check Alcotest.int "total" 1000 (List.length tuples);
  let hash_of key =
    let f = Volcano_tuple.Support.Partition.hash ~consumers:2 ~on:[ 0 ] () in
    f (Tuple.of_ints [ key ])
  in
  List.iter
    (fun t ->
      let key = Tuple.int_exn t 0 in
      let owner = Tuple.int_exn t 4 in
      check Alcotest.int
        (Printf.sprintf "key %d owner" key)
        (hash_of key) owner)
    tuples;
  let keys = List.sort compare (List.map (fun t -> Tuple.int_exn t 0) tuples) in
  check (Alcotest.list Alcotest.int) "all keys" (range 1000) keys

(* The section 4.3 example: groups A (1 process), BC (3), D (4) — eight
   processes, two exchanges, with operators B/C passing records within the
   BC processes. *)
let test_section_4_3_example () =
  let y_id = Exchange.fresh_id () in
  let x_cfg = Exchange.config ~degree:3 ~packet_size:83 () in
  let y_cfg = Exchange.config ~degree:4 ~packet_size:83 () in
  let total = 4 * 250 in
  let x =
    Exchange.iterator x_cfg ~group:(Group.solo ()) ~input:(fun bc_group ->
        (* operators B and C: simple per-process pass-through maps *)
        let y =
          Exchange.iterator ~id:y_id y_cfg ~group:bc_group ~input:(fun d_group ->
              let d_rank = Group.rank d_group in
              (* operator D: each D process generates a slice *)
              Iterator.generate ~count:250 ~f:(fun i ->
                  tuple_of_int ((d_rank * 250) + i)))
        in
        let c =
          Iterator.make
            ~open_:(fun () -> Iterator.open_ y)
            ~next:(fun () -> Iterator.next y)
            ~close:(fun () -> Iterator.close y)
        in
        let b =
          Iterator.make
            ~open_:(fun () -> Iterator.open_ c)
            ~next:(fun () -> Iterator.next c)
            ~close:(fun () -> Iterator.close c)
        in
        b)
  in
  check (Alcotest.list Alcotest.int) "eight-process pipeline" (range total)
    (sorted_ints x)

(* Flow control bounds the number of packets in flight. *)
let test_flow_control_bounds_depth () =
  let slack = 3 in
  let port = Port.create ~producers:1 ~consumers:1 ~flow_slack:slack () in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to 99 do
          let packet = Packet.create ~capacity:1 ~producer:0 in
          Packet.add packet (tuple_of_int i);
          if i = 99 then Packet.tag_end_of_stream packet;
          Port.send port ~producer:0 ~consumer:0 packet
        done)
  in
  let received = ref 0 in
  let rec drain () =
    match Port.receive port ~consumer:0 with
    | None -> ()
    | Some packet ->
        received := !received + Packet.length packet;
        if not (Packet.end_of_stream packet) then drain ()
  in
  drain ();
  Domain.join producer;
  check Alcotest.int "all records" 100 !received;
  check Alcotest.bool
    (Printf.sprintf "depth %d within slack %d" (Port.max_depth port) slack)
    true
    (Port.max_depth port <= slack)

let test_propagation_tree_children () =
  (* Round k: ranks < 2^k fork rank + 2^k; the union must cover 1..n-1
     exactly once. *)
  List.iter
    (fun size ->
      let spawned = Hashtbl.create 16 in
      for rank = 0 to size - 1 do
        List.iter
          (fun child ->
            Alcotest.(check bool)
              (Printf.sprintf "child %d of %d unique (n=%d)" child rank size)
              false (Hashtbl.mem spawned child);
            Hashtbl.add spawned child rank)
          (Volcano.Exchange.For_testing.children_of rank size)
      done;
      for rank = 1 to size - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "rank %d spawned (n=%d)" rank size)
          true (Hashtbl.mem spawned rank)
      done)
    [ 1; 2; 3; 5; 8; 13; 16 ]

let suite =
  [
    Alcotest.test_case "vertical pipeline preserves order" `Quick
      test_vertical_pipeline;
    Alcotest.test_case "three producers" `Quick test_three_producers;
    Alcotest.test_case "eight producers" `Quick test_eight_producers;
    Alcotest.test_case "packet size 1" `Quick test_packet_size_one;
    Alcotest.test_case "flow control disabled" `Quick test_flow_control_disabled;
    Alcotest.test_case "central fork" `Quick test_central_fork;
    Alcotest.test_case "early close cancels producers" `Quick test_early_close;
    Alcotest.test_case "broadcast replicates stream" `Quick test_broadcast_solo;
    Alcotest.test_case "hash partition two consumers" `Quick
      test_hash_partition_two_consumers;
    Alcotest.test_case "round robin balances" `Quick test_round_robin_balance;
    Alcotest.test_case "producer streams stay separate" `Quick
      test_producer_streams;
    Alcotest.test_case "no-fork interchange" `Quick test_interchange;
    Alcotest.test_case "section 4.3 eight-process example" `Quick
      test_section_4_3_example;
    Alcotest.test_case "flow control bounds depth" `Quick
      test_flow_control_bounds_depth;
    Alcotest.test_case "propagation tree covers all ranks" `Quick
      test_propagation_tree_children;
  ]
