module Bufpool = Volcano_storage.Bufpool
module Device = Volcano_storage.Device
module Vtoc = Volcano_storage.Vtoc

type t = {
  name : string;
  buffer : Bufpool.t;
  device : Device.t;
  cmp : string -> string -> int;
  lock : Mutex.t;
  mutable root : int;
  mutable entries : int;
  mutable pages : int;
  mutable seq : int;
      (* Stored values carry an 8-byte sequence suffix so that every entry's
         (key, stored-value) composite is unique; duplicate user entries can
         then never straddle a split separator. *)
}

(* Entries are ordered by the composite (key, value) so that duplicate keys
   stay well-ordered and deletes can address one specific entry.  Internal
   separators are composites, encoded as [u16 klen][key][value]. *)

let encode_composite k v =
  let buf = Bytes.create (2 + String.length k + String.length v) in
  Bytes.set_uint16_le buf 0 (String.length k);
  Bytes.blit_string k 0 buf 2 (String.length k);
  Bytes.blit_string v 0 buf (2 + String.length k) (String.length v);
  Bytes.to_string buf

let decode_composite c =
  let klen = Bytes.get_uint16_le (Bytes.of_string c) 0 in
  ( String.sub c 2 klen,
    String.sub c (2 + klen) (String.length c - 2 - klen) )

let compare_composite t a b =
  let ka, va = decode_composite a and kb, vb = decode_composite b in
  let c = t.cmp ka kb in
  if c <> 0 then c else String.compare va vb

(* Sequence suffix handling: user values are stored as value ^ 8-byte
   big-endian sequence number. *)

let with_seq t value =
  let buf = Bytes.create (String.length value + 8) in
  Bytes.blit_string value 0 buf 0 (String.length value);
  Bytes.set_int64_be buf (String.length value) (Int64.of_int t.seq);
  t.seq <- t.seq + 1;
  Bytes.to_string buf

let strip_seq stored = String.sub stored 0 (String.length stored - 8)

(* Node I/O.  Nodes are always fully overwritten, so writes use [fix_new]
   (fix without read); reads use the normal fix path. *)

let read_node t page_no =
  let frame = Bufpool.fix t.buffer t.device page_no in
  let node = Node.decode (Bufpool.bytes frame) in
  Bufpool.unfix t.buffer frame;
  node

let write_node t page_no node =
  let frame = Bufpool.fix_new t.buffer t.device page_no in
  Node.encode node (Bufpool.bytes frame);
  Bufpool.mark_dirty frame;
  Bufpool.unfix t.buffer frame

let alloc_node t node =
  let page_no = Device.allocate t.device in
  t.pages <- t.pages + 1;
  write_node t page_no node;
  page_no

let free_node t page_no =
  Device.free t.device page_no;
  t.pages <- t.pages - 1

let page_size t = Device.page_size t.device
let underflow t node = Node.encoded_size node < Node.capacity ~page_size:(page_size t) / 4

let sync_vtoc t =
  match Vtoc.find (Device.vtoc t.device) t.name with
  | None -> ()
  | Some e ->
      e.first_page <- t.root;
      e.last_page <- t.seq;
      e.pages <- t.pages;
      e.records <- t.entries

let create ~buffer ~device ~name ~cmp =
  let t =
    {
      name; buffer; device; cmp; lock = Mutex.create (); root = -1;
      entries = 0; pages = 0; seq = 0;
    }
  in
  Vtoc.add (Device.vtoc device)
    { Vtoc.name; first_page = -1; last_page = -1; pages = 0; records = 0 };
  t.root <- alloc_node t (Node.empty_leaf ());
  sync_vtoc t;
  t

let open_existing ~buffer ~device ~name ~cmp =
  match Vtoc.find (Device.vtoc device) name with
  | None -> raise Not_found
  | Some e ->
      {
        name;
        buffer;
        device;
        cmp;
        lock = Mutex.create ();
        root = e.first_page;
        entries = e.records;
        pages = e.pages;
        seq = e.last_page; (* the sequence counter rides in this field *)
      }

let name t = t.name
let entry_count t = t.entries

let rec node_height t page_no =
  match read_node t page_no with
  | Node.Leaf _ -> 1
  | Node.Internal { children; _ } -> 1 + node_height t children.(0)

let height t = node_height t t.root

(* Index of the child to descend into for a composite: the first separator
   strictly greater than the composite. *)
let child_index t keys composite =
  let n = Array.length keys in
  let rec search i =
    if i >= n then n
    else if compare_composite t composite keys.(i) < 0 then i
    else search (i + 1)
  in
  search 0

(* Position of the first entry >= the composite. *)
let lower_bound t entries composite =
  let n = Array.length entries in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      let k, v = entries.(mid) in
      if compare_composite t (encode_composite k v) composite < 0 then
        search (mid + 1) hi
      else search lo mid
  in
  search 0 n

let insert_at arr i x =
  let n = Array.length arr in
  Array.init (n + 1) (fun j -> if j < i then arr.(j) else if j = i then x else arr.(j - 1))

let remove_at arr i =
  let n = Array.length arr in
  Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

(* Split a leaf entry array near the midpoint by bytes. *)
let split_entries entries =
  let total =
    Array.fold_left (fun acc (k, v) -> acc + 4 + String.length k + String.length v) 0 entries
  in
  let acc = ref 0 in
  let cut = ref 0 in
  (try
     Array.iteri
       (fun i (k, v) ->
         if !acc >= total / 2 && i > 0 then begin
           cut := i;
           raise Exit
         end;
         acc := !acc + 4 + String.length k + String.length v)
       entries
   with Exit -> ());
  if !cut = 0 then cut := Array.length entries / 2;
  if !cut = 0 then cut := 1;
  ( Array.sub entries 0 !cut,
    Array.sub entries !cut (Array.length entries - !cut) )

(* Returns [Some (separator, right_page)] when the node split. *)
let rec insert_rec t page_no key value =
  match read_node t page_no with
  | Node.Leaf l ->
      let composite = encode_composite key value in
      let pos = lower_bound t l.entries composite in
      let entries = insert_at l.entries pos (key, value) in
      let candidate = Node.Leaf { entries; next = l.next } in
      if Node.fits ~page_size:(page_size t) candidate then begin
        write_node t page_no candidate;
        None
      end
      else begin
        let left, right = split_entries entries in
        let rk, rv = right.(0) in
        let right_page =
          alloc_node t (Node.Leaf { entries = right; next = l.next })
        in
        write_node t page_no (Node.Leaf { entries = left; next = right_page });
        Some (encode_composite rk rv, right_page)
      end
  | Node.Internal n -> (
      let idx = child_index t n.keys (encode_composite key value) in
      match insert_rec t n.children.(idx) key value with
      | None -> None
      | Some (separator, right_page) ->
          let keys = insert_at n.keys idx separator in
          let children = insert_at n.children (idx + 1) right_page in
          let candidate = Node.Internal { keys; children } in
          if Node.fits ~page_size:(page_size t) candidate then begin
            write_node t page_no candidate;
            None
          end
          else begin
            let m = Array.length keys in
            let mid = m / 2 in
            let promoted = keys.(mid) in
            let left_keys = Array.sub keys 0 mid in
            let left_children = Array.sub children 0 (mid + 1) in
            let right_keys = Array.sub keys (mid + 1) (m - mid - 1) in
            let right_children = Array.sub children (mid + 1) (m - mid) in
            let right_page =
              alloc_node t
                (Node.Internal { keys = right_keys; children = right_children })
            in
            write_node t page_no
              (Node.Internal { keys = left_keys; children = left_children });
            Some (promoted, right_page)
          end)

let insert t ~key ~value =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let value = with_seq t value in
      (match insert_rec t t.root key value with
      | None -> ()
      | Some (separator, right_page) ->
          let new_root =
            alloc_node t
              (Node.Internal
                 { keys = [| separator |]; children = [| t.root; right_page |] })
          in
          t.root <- new_root);
      t.entries <- t.entries + 1;
      sync_vtoc t)

(* Descend to the leftmost leaf that may contain the key. *)
let rec find_leaf t page_no composite =
  match read_node t page_no with
  | Node.Leaf { entries; next } -> (page_no, entries, next)
  | Node.Internal n -> find_leaf t n.children.(child_index t n.keys composite) composite

let lookup t key =
  if t.root = -1 then []
  else begin
    let composite = encode_composite key "" in
    let _, leaf_entries, leaf_next = find_leaf t t.root composite in
    let results = ref [] in
    let rec scan_leaf (l : (string * string) array) next start =
      let continue = ref true in
      let i = ref start in
      while !continue && !i < Array.length l do
        let k, v = l.(!i) in
        let c = t.cmp k key in
        if c = 0 then results := strip_seq v :: !results
        else if c > 0 then continue := false;
        incr i
      done;
      (* Equal keys may continue on the next leaf. *)
      if !continue && next <> -1 then
        match read_node t next with
        | Node.Leaf l' -> scan_leaf l'.entries l'.next 0
        | Node.Internal _ -> failwith "Btree: leaf chain reaches internal node"
    in
    let start = lower_bound t leaf_entries composite in
    scan_leaf leaf_entries leaf_next start;
    List.rev !results
  end

let mem t key = match lookup t key with [] -> false | _ :: _ -> true

(* Merge or redistribute children [idx] and [idx+1] of an internal node
   after a deletion caused underflow.  Returns updated (keys, children). *)
let rebalance_children t keys children idx =
  let left_page = children.(idx) and right_page = children.(idx + 1) in
  let left = read_node t left_page and right = read_node t right_page in
  match (left, right) with
  | Node.Leaf l, Node.Leaf r ->
      let combined = Array.append l.entries r.entries in
      let merged = Node.Leaf { entries = combined; next = r.next } in
      if Node.fits ~page_size:(page_size t) merged then begin
        write_node t left_page merged;
        free_node t right_page;
        (remove_at keys idx, remove_at children (idx + 1))
      end
      else begin
        let new_left, new_right = split_entries combined in
        let rk, rv = new_right.(0) in
        write_node t left_page (Node.Leaf { entries = new_left; next = right_page });
        write_node t right_page (Node.Leaf { entries = new_right; next = r.next });
        keys.(idx) <- encode_composite rk rv;
        (keys, children)
      end
  | Node.Internal l, Node.Internal r ->
      let combined_keys = Array.concat [ l.keys; [| keys.(idx) |]; r.keys ] in
      let combined_children = Array.append l.children r.children in
      let merged = Node.Internal { keys = combined_keys; children = combined_children } in
      if Node.fits ~page_size:(page_size t) merged then begin
        write_node t left_page merged;
        free_node t right_page;
        (remove_at keys idx, remove_at children (idx + 1))
      end
      else begin
        let m = Array.length combined_keys in
        let mid = m / 2 in
        write_node t left_page
          (Node.Internal
             {
               keys = Array.sub combined_keys 0 mid;
               children = Array.sub combined_children 0 (mid + 1);
             });
        write_node t right_page
          (Node.Internal
             {
               keys = Array.sub combined_keys (mid + 1) (m - mid - 1);
               children = Array.sub combined_children (mid + 1) (m - mid);
             });
        keys.(idx) <- combined_keys.(mid);
        (keys, children)
      end
  | _ -> failwith "Btree: sibling nodes of different kinds"

let rec delete_rec t page_no composite =
  match read_node t page_no with
  | Node.Leaf l ->
      let pos = lower_bound t l.entries composite in
      if pos >= Array.length l.entries then false
      else
        let k, v = l.entries.(pos) in
        if compare_composite t (encode_composite k v) composite <> 0 then false
        else begin
          write_node t page_no
            (Node.Leaf { entries = remove_at l.entries pos; next = l.next });
          true
        end
  | Node.Internal n ->
      let idx = child_index t n.keys composite in
      let deleted = delete_rec t n.children.(idx) composite in
      if not deleted then false
      else begin
        let child = read_node t n.children.(idx) in
        if underflow t child && Array.length n.children > 1 then begin
          let pair_idx = if idx = Array.length n.children - 1 then idx - 1 else idx in
          let keys, children = rebalance_children t n.keys n.children pair_idx in
          write_node t page_no (Node.Internal { keys; children })
        end;
        true
      end

(* Find the stored (suffixed) value of the first entry with this key whose
   stripped value matches [value] (or any entry if [value] is [None]). *)
let find_stored t key value =
  if t.root = -1 then None
  else begin
    let composite = encode_composite key "" in
    let _, leaf_entries, leaf_next = find_leaf t t.root composite in
    let found = ref None in
    let rec scan_leaf entries next start =
      let continue = ref true in
      let i = ref start in
      while !found = None && !continue && !i < Array.length entries do
        let k, v = entries.(!i) in
        let c = t.cmp k key in
        if c = 0 then begin
          match value with
          | None -> found := Some v
          | Some wanted ->
              if String.equal (strip_seq v) wanted then found := Some v
        end
        else if c > 0 then continue := false;
        incr i
      done;
      if !found = None && !continue && next <> -1 then
        match read_node t next with
        | Node.Leaf l -> scan_leaf l.entries l.next 0
        | Node.Internal _ -> failwith "Btree: leaf chain reaches internal node"
    in
    scan_leaf leaf_entries leaf_next (lower_bound t leaf_entries composite);
    !found
  end

let delete t ~key ?value () =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match find_stored t key value with
      | None -> false
      | Some v ->
          let deleted = delete_rec t t.root (encode_composite key v) in
          if deleted then begin
            t.entries <- t.entries - 1;
            (* Collapse a root with a single child. *)
            (match read_node t t.root with
            | Node.Internal { keys = [||]; children = [| only |] } ->
                free_node t t.root;
                t.root <- only
            | _ -> ());
            sync_vtoc t
          end;
          deleted)

type bound = Unbounded | Inclusive of string | Exclusive of string

type cursor = {
  tree : t;
  hi : bound;
  mutable entries : (string * string) array;
  mutable pos : int;
  mutable next_leaf : int;
  mutable finished : bool;
}

let range t ~lo ~hi =
  let start_composite =
    match lo with
    | Unbounded -> encode_composite "" ""
    | Inclusive k | Exclusive k -> encode_composite k ""
  in
  let _, leaf_entries, leaf_next = find_leaf t t.root start_composite in
  let pos =
    match lo with
    | Unbounded -> 0
    | Inclusive k ->
        lower_bound t leaf_entries (encode_composite k "")
    | Exclusive k ->
        (* Skip every entry with key <= k. *)
        let rec skip i =
          if i >= Array.length leaf_entries then i
          else
            let ek, _ = leaf_entries.(i) in
            if t.cmp ek k <= 0 then skip (i + 1) else i
        in
        skip (lower_bound t leaf_entries (encode_composite k ""))
  in
  { tree = t; hi; entries = leaf_entries; pos; next_leaf = leaf_next; finished = false }

let past_hi cursor key =
  match cursor.hi with
  | Unbounded -> false
  | Inclusive k -> cursor.tree.cmp key k > 0
  | Exclusive k -> cursor.tree.cmp key k >= 0

let rec next cursor =
  if cursor.finished then None
  else if cursor.pos >= Array.length cursor.entries then
    if cursor.next_leaf = -1 then begin
      cursor.finished <- true;
      None
    end
    else begin
      (match read_node cursor.tree cursor.next_leaf with
      | Node.Leaf l ->
          cursor.entries <- l.entries;
          cursor.pos <- 0;
          cursor.next_leaf <- l.next
      | Node.Internal _ -> failwith "Btree: leaf chain reaches internal node");
      next cursor
    end
  else begin
    let k, v = cursor.entries.(cursor.pos) in
    if past_hi cursor k then begin
      cursor.finished <- true;
      None
    end
    else begin
      cursor.pos <- cursor.pos + 1;
      (* Exclusive lower bounds may leave stragglers on later leaves; the
         [range] construction already skipped them on the first leaf. *)
      Some (k, strip_seq v)
    end
  end

let close_cursor cursor = cursor.finished <- true

let to_list t =
  let cursor = range t ~lo:Unbounded ~hi:Unbounded in
  let rec drain acc =
    match next cursor with None -> List.rev acc | Some e -> drain (e :: acc)
  in
  drain []

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  (* Returns (first composite, last composite, depth, leftmost leaf page,
     rightmost leaf page), or None for an empty subtree. *)
  let rec walk page_no lo hi =
    match read_node t page_no with
    | Node.Leaf l ->
        Array.iteri
          (fun i (k, v) ->
            let c = encode_composite k v in
            if i > 0 then begin
              let pk, pv = l.entries.(i - 1) in
              if compare_composite t (encode_composite pk pv) c > 0 then
                fail "leaf %d: entries out of order" page_no
            end;
            (match lo with
            | Some b when compare_composite t c b < 0 ->
                fail "leaf %d: entry below separator" page_no
            | _ -> ());
            match hi with
            | Some b when compare_composite t c b >= 0 ->
                fail "leaf %d: entry at or above separator" page_no
            | _ -> ())
          l.entries;
        (1, Array.length l.entries)
    | Node.Internal n ->
        if Array.length n.children <> Array.length n.keys + 1 then
          fail "internal %d: arity mismatch" page_no;
        Array.iteri
          (fun i k ->
            if i > 0 && compare_composite t n.keys.(i - 1) k >= 0 then
              fail "internal %d: separators out of order" page_no)
          n.keys;
        let depth = ref 0 in
        let count = ref 0 in
        Array.iteri
          (fun i child ->
            let clo = if i = 0 then lo else Some n.keys.(i - 1) in
            let chi = if i = Array.length n.keys then hi else Some n.keys.(i) in
            let d, c = walk child clo chi in
            if !depth = 0 then depth := d
            else if d <> !depth then fail "internal %d: uneven depth" page_no;
            count := !count + c)
          n.children;
        (!depth + 1, !count)
  in
  let _, count = walk t.root None None in
  if count <> t.entries then
    fail "entry count mismatch: counted %d, recorded %d" count t.entries
