(** On-page layout of B+-tree nodes.

    A node is decoded into a heap value, modified, and re-encoded; all byte
    fiddling lives here.  Keys and values are opaque byte strings compared
    by the tree's support function. *)

type t =
  | Leaf of { mutable entries : (string * string) array; mutable next : int }
      (** sorted key/value pairs and the next-leaf link (-1 at the end) *)
  | Internal of { mutable keys : string array; mutable children : int array }
      (** [children] has one more element than [keys]; subtree [i] holds
          keys [< keys.(i)] (and [>= keys.(i-1)]) *)

val encoded_size : t -> int

val capacity : page_size:int -> int
(** Usable bytes in a page. *)

val fits : page_size:int -> t -> bool

val encode : t -> bytes -> unit
(** Encode into a page-sized buffer.  @raise Invalid_argument if too big. *)

val decode : bytes -> t

val empty_leaf : unit -> t
