lib/btree/node.ml: Array Bytes Int32 String
