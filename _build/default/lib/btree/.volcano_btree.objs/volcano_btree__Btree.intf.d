lib/btree/btree.mli: Volcano_storage
