lib/btree/node.mli:
