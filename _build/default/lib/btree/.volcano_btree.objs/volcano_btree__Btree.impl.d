lib/btree/btree.ml: Array Bytes Fun Int64 List Mutex Node Printf String Volcano_storage
