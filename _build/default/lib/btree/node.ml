type t =
  | Leaf of { mutable entries : (string * string) array; mutable next : int }
  | Internal of { mutable keys : string array; mutable children : int array }

let header_size = 16
let kind_leaf = 0
let kind_internal = 1

let capacity ~page_size = page_size - header_size

let encoded_size = function
  | Leaf { entries; _ } ->
      Array.fold_left
        (fun acc (k, v) -> acc + 4 + String.length k + String.length v)
        0 entries
  | Internal { keys; children } ->
      Array.fold_left (fun acc k -> acc + 2 + String.length k) 0 keys
      + (4 * Array.length children)

let fits ~page_size node = encoded_size node <= capacity ~page_size

let empty_leaf () = Leaf { entries = [||]; next = -1 }

let encode node page =
  let page_size = Bytes.length page in
  if not (fits ~page_size node) then invalid_arg "Btree node overflows page";
  Bytes.fill page 0 page_size '\000';
  let cursor = ref header_size in
  let put_u16 v =
    Bytes.set_uint16_le page !cursor v;
    cursor := !cursor + 2
  in
  let put_str s =
    put_u16 (String.length s);
    Bytes.blit_string s 0 page !cursor (String.length s);
    cursor := !cursor + String.length s
  in
  let put_i32 v =
    Bytes.set_int32_le page !cursor (Int32.of_int v);
    cursor := !cursor + 4
  in
  match node with
  | Leaf { entries; next } ->
      Bytes.set_uint16_le page 0 (Array.length entries);
      Bytes.set_uint16_le page 2 kind_leaf;
      Bytes.set_int32_le page 4 (Int32.of_int next);
      Array.iter
        (fun (k, v) ->
          put_str k;
          put_str v)
        entries
  | Internal { keys; children } ->
      assert (Array.length children = Array.length keys + 1);
      Bytes.set_uint16_le page 0 (Array.length keys);
      Bytes.set_uint16_le page 2 kind_internal;
      Array.iter (fun c -> put_i32 c) children;
      Array.iter put_str keys

let decode page =
  let n = Bytes.get_uint16_le page 0 in
  let kind = Bytes.get_uint16_le page 2 in
  let cursor = ref header_size in
  let get_u16 () =
    let v = Bytes.get_uint16_le page !cursor in
    cursor := !cursor + 2;
    v
  in
  let get_str () =
    let len = get_u16 () in
    let s = Bytes.sub_string page !cursor len in
    cursor := !cursor + len;
    s
  in
  let get_i32 () =
    let v = Int32.to_int (Bytes.get_int32_le page !cursor) in
    cursor := !cursor + 4;
    v
  in
  if kind = kind_leaf then begin
    let next = Int32.to_int (Bytes.get_int32_le page 4) in
    let entries =
      Array.init n (fun _ ->
          let k = get_str () in
          let v = get_str () in
          (k, v))
    in
    Leaf { entries; next }
  end
  else begin
    let children = Array.init (n + 1) (fun _ -> get_i32 ()) in
    let keys = Array.init n (fun _ -> get_str ()) in
    Internal { keys; children }
  end
