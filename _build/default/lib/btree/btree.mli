(** B+-trees over the buffer pool.

    Keys and values are opaque byte strings; ordering comes from a caller-
    supplied comparator, keeping the support-function discipline.  Duplicate
    keys are allowed (secondary-index style); entries with equal keys are
    further ordered by value so that deletes can name a specific entry.

    The tree is single-writer / multi-reader like the rest of Volcano's
    single-user file system; structural changes take the tree lock. *)

type t

val create :
  buffer:Volcano_storage.Bufpool.t ->
  device:Volcano_storage.Device.t ->
  name:string ->
  cmp:(string -> string -> int) ->
  t
(** Create an empty tree and register it in the device VTOC. *)

val open_existing :
  buffer:Volcano_storage.Bufpool.t ->
  device:Volcano_storage.Device.t ->
  name:string ->
  cmp:(string -> string -> int) ->
  t
(** @raise Not_found if the VTOC has no such tree. *)

val name : t -> string
val height : t -> int
val entry_count : t -> int

val insert : t -> key:string -> value:string -> unit

val lookup : t -> string -> string list
(** All values stored under exactly the given key, in value order. *)

val mem : t -> string -> bool

val delete : t -> key:string -> ?value:string -> unit -> bool
(** Remove one entry with the given key (and value, if supplied).  Returns
    whether an entry was removed.  Underflowing nodes are rebalanced by
    borrowing from or merging with a sibling. *)

type bound = Unbounded | Inclusive of string | Exclusive of string

type cursor

val range : t -> lo:bound -> hi:bound -> cursor
val next : cursor -> (string * string) option
val close_cursor : cursor -> unit

val to_list : t -> (string * string) list
(** Full ascending scan (tests). *)

val check_invariants : t -> unit
(** Walk the whole tree verifying ordering, separator correctness, and leaf
    chaining.  @raise Failure on violation.  For tests. *)
