(** External sort.

    [open_] consumes the whole input (sort is a stop-and-go operator):
    tuples accumulate in memory up to [run_capacity]; overflowing runs are
    sorted and spilled as heap files on a (typically virtual) device, then
    merged with a cascaded merge of fan-in [fan_in], exactly the structure
    of Volcano's sort module.  [next] delivers from the final merge.

    Without a [spill] target the operator sorts purely in memory regardless
    of size. *)

type spill = {
  device : Volcano_storage.Device.t;
  buffer : Volcano_storage.Bufpool.t;
}

val iterator :
  ?run_capacity:int ->
  ?fan_in:int ->
  ?spill:spill ->
  cmp:Volcano_tuple.Support.comparator ->
  Volcano.Iterator.t ->
  Volcano.Iterator.t
(** Defaults: [run_capacity] 65536 tuples, [fan_in] 8. *)

val runs_spilled : unit -> int
(** Total sorted runs written to spill devices (instrumentation). *)
