(** The choose-plan operator for dynamic query evaluation plans (Graefe &
    Ward, "Dynamic Query Evaluation Plans", SIGMOD 1989 — developed in the
    same project and cited as reference 1 of the paper).

    A query prepared before run-time constants are known compiles several
    alternative plans; choose-plan is an ordinary iterator whose [open_]
    evaluates a decision support function and binds one alternative, which
    then serves [next]/[close].  Everything above and below is oblivious —
    the same encapsulation trick as exchange, applied to plan choice. *)

val iterator :
  decide:(unit -> int) ->
  alternatives:Volcano.Iterator.t array ->
  Volcano.Iterator.t
(** [decide ()] is consulted at [open_] time and must return an index into
    [alternatives].  Only the chosen alternative is opened.
    @raise Invalid_argument at open time on an out-of-range choice. *)
