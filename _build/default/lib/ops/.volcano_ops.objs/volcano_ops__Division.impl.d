lib/ops/division.ml: Array Bytes Char Hashtbl List Queue Volcano Volcano_tuple
