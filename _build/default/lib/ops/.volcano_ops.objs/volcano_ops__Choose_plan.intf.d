lib/ops/choose_plan.mli: Volcano
