lib/ops/aggregate.mli: Volcano Volcano_tuple
