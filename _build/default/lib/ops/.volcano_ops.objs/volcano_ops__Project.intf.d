lib/ops/project.mli: Volcano Volcano_tuple
