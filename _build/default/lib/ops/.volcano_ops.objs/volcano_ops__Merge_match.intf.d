lib/ops/merge_match.mli: Match_op Volcano
