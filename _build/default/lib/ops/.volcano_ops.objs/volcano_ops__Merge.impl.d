lib/ops/merge.ml: Array Volcano Volcano_tuple Volcano_util
