lib/ops/nested_loops.mli: Volcano Volcano_tuple
