lib/ops/merge_match.ml: Array List Match_op Volcano Volcano_tuple
