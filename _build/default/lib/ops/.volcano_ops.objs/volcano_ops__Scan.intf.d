lib/ops/scan.mli: Volcano Volcano_btree Volcano_storage Volcano_tuple
