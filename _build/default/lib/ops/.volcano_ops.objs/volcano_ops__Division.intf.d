lib/ops/division.mli: Volcano
