lib/ops/hash_match.mli: Match_op Sort Volcano
