lib/ops/filter.mli: Volcano Volcano_tuple
