lib/ops/sort.ml: Array Atomic Bytes List Printf Volcano Volcano_storage Volcano_tuple Volcano_util
