lib/ops/scan.ml: Bytes Int32 List Volcano Volcano_btree Volcano_storage Volcano_tuple
