lib/ops/match_op.ml: Array List Volcano_tuple
