lib/ops/sort.mli: Volcano Volcano_storage Volcano_tuple
