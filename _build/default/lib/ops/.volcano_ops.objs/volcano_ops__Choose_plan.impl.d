lib/ops/choose_plan.ml: Array Printf Volcano
