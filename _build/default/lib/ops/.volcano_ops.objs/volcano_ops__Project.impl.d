lib/ops/project.ml: Array List Option Volcano Volcano_tuple
