lib/ops/filter.ml: Volcano
