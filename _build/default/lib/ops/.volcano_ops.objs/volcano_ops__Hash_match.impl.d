lib/ops/hash_match.ml: Array Atomic Bytes Hashtbl List Match_op Printf Queue Scan Sort Volcano Volcano_storage Volcano_tuple
