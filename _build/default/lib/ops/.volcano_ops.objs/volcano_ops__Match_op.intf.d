lib/ops/match_op.mli: Volcano_tuple
