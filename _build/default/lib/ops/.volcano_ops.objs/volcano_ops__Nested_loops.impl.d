lib/ops/nested_loops.ml: Array Volcano Volcano_tuple
