lib/ops/aggregate.ml: Array Hashtbl List Queue Volcano Volcano_tuple
