lib/ops/merge.mli: Volcano Volcano_tuple
