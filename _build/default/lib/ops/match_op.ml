module Tuple = Volcano_tuple.Tuple
module Value = Volcano_tuple.Value

type kind =
  | Join
  | Left_outer
  | Right_outer
  | Full_outer
  | Semi
  | Anti
  | Union
  | Intersection
  | Difference
  | Anti_difference

let nulls n = Array.make n Value.Null

let pad_right tuple ~right_arity = Tuple.concat tuple (nulls right_arity)
let pad_left tuple ~left_arity = Tuple.concat (nulls left_arity) tuple

let rec take n xs =
  if n <= 0 then []
  else match xs with [] -> [] | x :: rest -> x :: take (n - 1) rest

let rec drop n xs =
  if n <= 0 then xs else match xs with [] -> [] | _ :: rest -> drop (n - 1) rest

let cross left right =
  List.concat_map (fun l -> List.map (fun r -> Tuple.concat l r) right) left

let emit_group kind ~left_arity ~right_arity ~left ~right =
  match kind with
  | Join -> cross left right
  | Left_outer ->
      if right = [] then List.map (pad_right ~right_arity) left
      else cross left right
  | Right_outer ->
      if left = [] then List.map (pad_left ~left_arity) right
      else cross left right
  | Full_outer ->
      if left = [] then List.map (pad_left ~left_arity) right
      else if right = [] then List.map (pad_right ~right_arity) left
      else cross left right
  | Semi -> if right = [] then [] else left
  | Anti -> if right = [] then left else []
  | Union -> left @ drop (List.length left) right
  | Intersection -> take (List.length right) left
  | Difference -> drop (List.length right) left
  | Anti_difference -> drop (List.length left) right

let output_arity kind ~left_arity ~right_arity =
  match kind with
  | Join | Left_outer | Right_outer | Full_outer -> left_arity + right_arity
  | Semi | Anti | Intersection | Difference -> left_arity
  | Anti_difference -> right_arity
  | Union -> left_arity (* operands must be union-compatible *)

let to_string = function
  | Join -> "join"
  | Left_outer -> "left-outer-join"
  | Right_outer -> "right-outer-join"
  | Full_outer -> "full-outer-join"
  | Semi -> "semi-join"
  | Anti -> "anti-join"
  | Union -> "union"
  | Intersection -> "intersection"
  | Difference -> "difference"
  | Anti_difference -> "anti-difference"
