module Iterator = Volcano.Iterator
module Heap_file = Volcano_storage.Heap_file
module Serial = Volcano_tuple.Serial
module Binheap = Volcano_util.Binheap

type spill = {
  device : Volcano_storage.Device.t;
  buffer : Volcano_storage.Bufpool.t;
}

let run_counter = Atomic.make 0
let runs_spilled () = Atomic.get run_counter

(* A sorted run: either resident or a spilled heap file. *)
type run = In_memory of Volcano_tuple.Tuple.t array | Spilled of Heap_file.t

let spill_run spill tuples =
  let id = Atomic.fetch_and_add run_counter 1 in
  let file =
    Heap_file.create ~buffer:spill.buffer ~device:spill.device
      ~name:(Printf.sprintf "__sort_run_%d" id)
  in
  Array.iter
    (fun tuple ->
      let _ = Heap_file.insert file (Bytes.to_string (Serial.encode tuple)) in
      ())
    tuples;
  Spilled file

type run_cursor = {
  mutable head : Volcano_tuple.Tuple.t option;
  advance : unit -> Volcano_tuple.Tuple.t option;
  cleanup : unit -> unit;
}

let cursor_of_run run =
  match run with
  | In_memory tuples ->
      let pos = ref 0 in
      let advance () =
        if !pos >= Array.length tuples then None
        else begin
          let t = tuples.(!pos) in
          incr pos;
          Some t
        end
      in
      let c = { head = None; advance; cleanup = (fun () -> ()) } in
      c.head <- advance ();
      c
  | Spilled file ->
      let scan = Heap_file.scan file in
      let advance () =
        match Heap_file.next scan with
        | None -> None
        | Some (_rid, record) -> Some (Serial.decode_bytes (Bytes.of_string record))
      in
      let cleanup () =
        Heap_file.close_cursor scan;
        Heap_file.drop file
      in
      let c = { head = None; advance; cleanup } in
      c.head <- advance ();
      c

(* Merge a batch of runs into one stream.  The heap orders cursors by their
   head tuple; ties broken by an index to keep the comparison total. *)
let merge_cursors ~cmp cursors =
  let heap =
    Binheap.create ~cmp:(fun (a, ia) (b, ib) ->
        let c = cmp a b in
        if c <> 0 then c else compare (ia : int) ib)
  in
  Array.iteri
    (fun i c -> match c.head with Some t -> Binheap.push heap (t, i) | None -> ())
    cursors;
  fun () ->
    match Binheap.pop heap with
    | None -> None
    | Some (tuple, i) ->
        let cursor = cursors.(i) in
        cursor.head <- cursor.advance ();
        (match cursor.head with
        | Some t -> Binheap.push heap (t, i)
        | None -> ());
        Some tuple

(* Cascaded merge: reduce the run list to at most [fan_in] runs, then give
   back the final single-level merge. *)
let rec reduce_runs ~cmp ~fan_in ~spill runs =
  if List.length runs <= fan_in then runs
  else
    match spill with
    | None ->
        (* Cannot spill intermediate merges; merge everything at once. *)
        runs
    | Some sp ->
        let rec take n xs =
          if n = 0 then ([], xs)
          else
            match xs with
            | [] -> ([], [])
            | x :: rest ->
                let batch, remainder = take (n - 1) rest in
                (x :: batch, remainder)
        in
        let batch, rest = take fan_in runs in
        let cursors = Array.of_list (List.map cursor_of_run batch) in
        let pull = merge_cursors ~cmp cursors in
        let collected = ref [] in
        let rec drain () =
          match pull () with
          | None -> ()
          | Some t ->
              collected := t :: !collected;
              drain ()
        in
        drain ();
        Array.iter (fun c -> c.cleanup ()) cursors;
        let merged = spill_run sp (Array.of_list (List.rev !collected)) in
        reduce_runs ~cmp ~fan_in ~spill (rest @ [ merged ])

let iterator ?(run_capacity = 65536) ?(fan_in = 8) ?spill ~cmp input =
  if run_capacity < 1 then invalid_arg "Sort: run_capacity must be positive";
  if fan_in < 2 then invalid_arg "Sort: fan_in must be at least 2";
  let state = ref None in
  Iterator.make
    ~open_:(fun () ->
      Iterator.open_ input;
      let runs = ref [] in
      let pending = ref [] in
      let pending_len = ref 0 in
      let flush_pending () =
        if !pending_len > 0 then begin
          let tuples = Array.of_list (List.rev !pending) in
          Array.sort cmp tuples;
          let run =
            match spill with
            | Some sp when !runs <> [] || !pending_len >= run_capacity ->
                spill_run sp tuples
            | _ -> In_memory tuples
          in
          runs := !runs @ [ run ];
          pending := [];
          pending_len := 0
        end
      in
      let rec consume () =
        match Iterator.next input with
        | None -> ()
        | Some tuple ->
            pending := tuple :: !pending;
            incr pending_len;
            if !pending_len >= run_capacity then flush_pending ();
            consume ()
      in
      consume ();
      flush_pending ();
      Iterator.close input;
      let runs = reduce_runs ~cmp ~fan_in ~spill !runs in
      let cursors = Array.of_list (List.map cursor_of_run runs) in
      let pull = merge_cursors ~cmp cursors in
      state := Some (pull, cursors))
    ~next:(fun () ->
      match !state with
      | None -> invalid_arg "Sort: not open"
      | Some (pull, _) -> pull ())
    ~close:(fun () ->
      match !state with
      | None -> ()
      | Some (_, cursors) ->
          Array.iter (fun c -> c.cleanup ()) cursors;
          state := None)
