(** Selection. *)

val iterator :
  pred:Volcano_tuple.Support.predicate -> Volcano.Iterator.t -> Volcano.Iterator.t
(** Pass through tuples satisfying the predicate support function. *)
