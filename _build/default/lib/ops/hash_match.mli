(** Hash-based implementation of the one-to-one match family.

    The right input is the build side, the left input probes.  When the
    build side exceeds [build_capacity] and a spill target is available,
    both inputs are hash-partitioned into files on the spill device (Grace
    style) and each partition pair is matched in memory — keys co-partition,
    so results concatenate. *)

val iterator :
  ?build_capacity:int ->
  ?partitions:int ->
  ?spill:Sort.spill ->
  kind:Match_op.kind ->
  left_key:int list ->
  right_key:int list ->
  left_arity:int ->
  right_arity:int ->
  Volcano.Iterator.t ->
  Volcano.Iterator.t ->
  Volcano.Iterator.t
(** [iterator ... probe build]: the first positional input is the left
    (probe) side, the second the right (build) side.  Defaults: unlimited
    build capacity (pure in-memory), 16 partitions. *)
