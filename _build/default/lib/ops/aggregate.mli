(** Aggregation and duplicate elimination — "two algorithms each" (section
    1): sort-based (input arrives grouped) and hash-based.

    Output tuples carry the group-by columns followed by one value per
    aggregate.  Duplicate elimination is aggregation with an empty aggregate
    list. *)

type agg =
  | Count
  | Sum of Volcano_tuple.Expr.num
  | Min of Volcano_tuple.Expr.num
  | Max of Volcano_tuple.Expr.num
  | Avg of Volcano_tuple.Expr.num

val hash_iterator :
  group_by:int list -> aggs:agg list -> Volcano.Iterator.t -> Volcano.Iterator.t
(** Hash aggregation: consumes the whole input on [open_], emits one tuple
    per group. *)

val sorted_iterator :
  group_by:int list -> aggs:agg list -> Volcano.Iterator.t -> Volcano.Iterator.t
(** Streaming aggregation over an input already sorted (or at least
    grouped) on the group-by columns; fully pipelined. *)

val distinct_hash : on:int list -> Volcano.Iterator.t -> Volcano.Iterator.t
(** Duplicate elimination keyed on the given columns; emits the first tuple
    of each group. *)

val distinct_sorted : on:int list -> Volcano.Iterator.t -> Volcano.Iterator.t
