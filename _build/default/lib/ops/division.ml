module Iterator = Volcano.Iterator
module Tuple = Volcano_tuple.Tuple
module Support = Volcano_tuple.Support

module Key_table = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

(* Load the divisor into a table mapping its key projection to a dense
   sequence number (duplicates collapse). *)
let load_divisor ~divisor_key divisor =
  let key_of = Support.key_on divisor_key in
  let table = Key_table.create 64 in
  Iterator.iter
    (fun tuple ->
      let key = key_of tuple in
      if not (Key_table.mem table key) then
        Key_table.add table key (Key_table.length table))
    divisor;
  table

let hash_division ~quotient ~divisor_attrs ~divisor_key ~dividend ~divisor =
  let quotient_of = Support.key_on quotient in
  let attrs_of = Support.key_on divisor_attrs in
  let results = Queue.create () in
  let opened = ref false in
  Iterator.make
    ~open_:(fun () ->
      let table = load_divisor ~divisor_key divisor in
      let n = Key_table.length table in
      (* Per-quotient bitmaps over divisor sequence numbers. *)
      let maps = Key_table.create 1024 in
      let order = ref [] in
      Iterator.iter
        (fun tuple ->
          match Key_table.find_opt table (attrs_of tuple) with
          | None -> () (* dividend row referencing no divisor member *)
          | Some seq ->
              let q = quotient_of tuple in
              let bits, count =
                match Key_table.find_opt maps q with
                | Some entry -> entry
                | None ->
                    let entry = (Bytes.make ((n + 7) / 8) '\000', ref 0) in
                    Key_table.add maps q entry;
                    order := q :: !order;
                    entry
              in
              let byte = Char.code (Bytes.get bits (seq / 8)) in
              let bit = 1 lsl (seq mod 8) in
              if byte land bit = 0 then begin
                Bytes.set bits (seq / 8) (Char.chr (byte lor bit));
                incr count
              end)
        dividend;
      List.iter
        (fun q ->
          let _, count = Key_table.find maps q in
          if !count = n && n > 0 then Queue.push q results)
        (List.rev !order);
      opened := true)
    ~next:(fun () ->
      if not !opened then invalid_arg "Division.hash: not open";
      Queue.take_opt results)
    ~close:(fun () -> opened := false)

let count_division ~quotient ~divisor_attrs ~divisor_key ~dividend ~divisor =
  let quotient_of = Support.key_on quotient in
  let attrs_of = Support.key_on divisor_attrs in
  let results = Queue.create () in
  let opened = ref false in
  Iterator.make
    ~open_:(fun () ->
      let table = load_divisor ~divisor_key divisor in
      let n = Key_table.length table in
      (* Count distinct matching divisor values per quotient via a set of
         (quotient, divisor-attrs) pairs. *)
      let seen = Key_table.create 4096 in
      let counts = Key_table.create 1024 in
      let order = ref [] in
      Iterator.iter
        (fun tuple ->
          let attrs = attrs_of tuple in
          if Key_table.mem table attrs then begin
            let q = quotient_of tuple in
            let pair = Tuple.concat q attrs in
            if not (Key_table.mem seen pair) then begin
              Key_table.add seen pair 0;
              match Key_table.find_opt counts q with
              | Some r -> incr r
              | None ->
                  Key_table.add counts q (ref 1);
                  order := q :: !order
            end
          end)
        dividend;
      List.iter
        (fun q ->
          let count = Key_table.find counts q in
          if !count = n && n > 0 then Queue.push q results)
        (List.rev !order);
      opened := true)
    ~next:(fun () ->
      if not !opened then invalid_arg "Division.count: not open";
      Queue.take_opt results)
    ~close:(fun () -> opened := false)

let sort_division ~quotient ~divisor_attrs ~divisor_key ~dividend ~divisor =
  let quotient_of = Support.key_on quotient in
  let attrs_of = Support.key_on divisor_attrs in
  let divisor_key_of = Support.key_on divisor_key in
  let divisor_values = ref [||] in
  let lookahead = ref None in
  Iterator.make
    ~open_:(fun () ->
      (* Materialize the sorted, distinct divisor keys. *)
      let values = ref [] in
      Iterator.iter
        (fun tuple ->
          let key = divisor_key_of tuple in
          match !values with
          | last :: _ when Tuple.equal last key -> ()
          | _ -> values := key :: !values)
        divisor;
      divisor_values := Array.of_list (List.rev !values);
      Iterator.open_ dividend;
      lookahead := Iterator.next dividend)
    ~next:(fun () ->
      let divisor_values = !divisor_values in
      let n = Array.length divisor_values in
      (* Walk one quotient group: dividend is sorted by (quotient, attrs),
         so matching against the sorted divisor is a merge. *)
      let rec group_loop () =
        match !lookahead with
        | None -> None
        | Some first ->
            let q = quotient_of first in
            let matched = ref 0 in
            let cursor = ref 0 in
            let visit tuple =
              let attrs = attrs_of tuple in
              (* Advance the divisor cursor past smaller values. *)
              while
                !cursor < n && Tuple.compare divisor_values.(!cursor) attrs < 0
              do
                incr cursor
              done;
              if !cursor < n && Tuple.equal divisor_values.(!cursor) attrs then begin
                incr matched;
                incr cursor
              end
            in
            visit first;
            let rec gather () =
              match Iterator.next dividend with
              | None -> lookahead := None
              | Some tuple ->
                  if Tuple.equal (quotient_of tuple) q then begin
                    visit tuple;
                    gather ()
                  end
                  else lookahead := Some tuple
            in
            gather ();
            if !matched = n && n > 0 then Some q else group_loop ()
      in
      group_loop ())
    ~close:(fun () -> Iterator.close dividend)
