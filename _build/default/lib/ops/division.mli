(** Relational division — universal quantification: which quotient values of
    the dividend are paired with {e every} divisor tuple?

    Graefe studied division algorithms separately ("Relational Division:
    Four Algorithms and Their Performance", ICDE 1989) and section 4.4 of
    the paper reports parallelizing hash-division with both divisor and
    quotient partitioning "in about three hours" thanks to exchange.  Three
    algorithms are provided here; the two parallel partitionings are built
    in the examples and benchmarks by wrapping these with exchange
    operators. *)

val hash_division :
  quotient:int list ->
  divisor_attrs:int list ->
  divisor_key:int list ->
  dividend:Volcano.Iterator.t ->
  divisor:Volcano.Iterator.t ->
  Volcano.Iterator.t
(** Hash-division: the divisor loads into a table assigning sequence
    numbers; dividend tuples set bits in a per-quotient bitmap; quotients
    with complete bitmaps are emitted.  [quotient] and [divisor_attrs] index
    the dividend; [divisor_key] indexes the divisor. *)

val count_division :
  quotient:int list ->
  divisor_attrs:int list ->
  divisor_key:int list ->
  dividend:Volcano.Iterator.t ->
  divisor:Volcano.Iterator.t ->
  Volcano.Iterator.t
(** Aggregation-based division: count distinct matching divisor values per
    quotient and compare with the divisor cardinality. *)

val sort_division :
  quotient:int list ->
  divisor_attrs:int list ->
  divisor_key:int list ->
  dividend:Volcano.Iterator.t ->
  divisor:Volcano.Iterator.t ->
  Volcano.Iterator.t
(** Merge-based division over sorted inputs: the dividend must be sorted on
    (quotient, divisor attributes), the divisor on its key. *)
