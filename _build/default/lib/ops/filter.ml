module Iterator = Volcano.Iterator

let iterator ~pred input =
  Iterator.make
    ~open_:(fun () -> Iterator.open_ input)
    ~next:(fun () ->
      let rec step () =
        match Iterator.next input with
        | None -> None
        | Some tuple -> if pred tuple then Some tuple else step ()
      in
      step ())
    ~close:(fun () -> Iterator.close input)
