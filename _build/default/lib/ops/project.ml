module Iterator = Volcano.Iterator
module Tuple = Volcano_tuple.Tuple
module Expr = Volcano_tuple.Expr

let map f input =
  Iterator.make
    ~open_:(fun () -> Iterator.open_ input)
    ~next:(fun () -> Option.map f (Iterator.next input))
    ~close:(fun () -> Iterator.close input)

let columns cols input = map (fun tuple -> Tuple.project tuple cols) input

let exprs es input =
  let compiled = Array.of_list (List.map Expr.Compiled.num es) in
  map (fun tuple -> Array.map (fun f -> f tuple) compiled) input
