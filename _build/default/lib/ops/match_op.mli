(** The one-to-one match family.

    Volcano implements "two algorithms each for natural join, semi-join,
    outer join, anti-join, ... union, intersection, difference,
    anti-difference, and Cartesian product" (section 1) — one sort-based and
    one hash-based algorithm per operation, all specializations of a single
    binary {e match} operator.  This module defines the shared semantics:
    what to emit for a group of left and right tuples agreeing on the key.

    Set operations use {e one-to-one} matching on duplicates: for a key
    occurring [n] times on the left and [m] times on the right, union emits
    [max n m] tuples, intersection [min n m], difference [max 0 (n - m)],
    and anti-difference [max 0 (m - n)] (right-side tuples). *)

type kind =
  | Join  (** all matching pairs, concatenated *)
  | Left_outer
  | Right_outer
  | Full_outer
  | Semi  (** left tuples with at least one match *)
  | Anti  (** left tuples with no match (anti-join) *)
  | Union
  | Intersection
  | Difference  (** left minus right *)
  | Anti_difference  (** right minus left *)

val emit_group :
  kind ->
  left_arity:int ->
  right_arity:int ->
  left:Volcano_tuple.Tuple.t list ->
  right:Volcano_tuple.Tuple.t list ->
  Volcano_tuple.Tuple.t list
(** Output for one key group.  Either side may be empty (a key present only
    on the other side).  Outer-join padding uses [Null]. *)

val output_arity : kind -> left_arity:int -> right_arity:int -> int

val to_string : kind -> string
