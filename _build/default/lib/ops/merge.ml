module Iterator = Volcano.Iterator
module Binheap = Volcano_util.Binheap

type source = {
  mutable head : Volcano_tuple.Tuple.t option;
  input : Iterator.t;
}

let of_iterators ~cmp inputs =
  let sources = Array.map (fun input -> { head = None; input }) inputs in
  let heap = ref None in
  Iterator.make
    ~open_:(fun () ->
      let h =
        Binheap.create ~cmp:(fun (a, ia) (b, ib) ->
            let c = cmp a b in
            if c <> 0 then c else compare (ia : int) ib)
      in
      Array.iteri
        (fun i source ->
          Iterator.open_ source.input;
          source.head <- Iterator.next source.input;
          match source.head with
          | Some t -> Binheap.push h (t, i)
          | None -> ())
        sources;
      heap := Some h)
    ~next:(fun () ->
      match !heap with
      | None -> invalid_arg "Merge: not open"
      | Some h -> (
          match Binheap.pop h with
          | None -> None
          | Some (tuple, i) ->
              let source = sources.(i) in
              source.head <- Iterator.next source.input;
              (match source.head with
              | Some t -> Binheap.push h (t, i)
              | None -> ());
              Some tuple))
    ~close:(fun () ->
      Array.iter (fun source -> Iterator.close source.input) sources;
      heap := None)

let exchange_merge ?id cfg ~cmp ~group ~input =
  let streams = Volcano.Exchange.producer_streams ?id cfg ~group ~input in
  of_iterators ~cmp streams
