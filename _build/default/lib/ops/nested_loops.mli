(** Nested-loops join and Cartesian product.  The inner (right) input is
    materialized in memory on [open_]; the outer streams.  Handles arbitrary
    theta predicates, unlike the key-based match operators. *)

val join :
  pred:Volcano_tuple.Support.predicate ->
  left:Volcano.Iterator.t ->
  right:Volcano.Iterator.t ->
  Volcano.Iterator.t
(** The predicate sees the concatenated (left ++ right) tuple. *)

val cross :
  left:Volcano.Iterator.t -> right:Volcano.Iterator.t -> Volcano.Iterator.t
