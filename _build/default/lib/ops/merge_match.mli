(** Sort-based (merge) implementation of the one-to-one match family.  Both
    inputs must arrive sorted on their key columns; groups of equal keys are
    buffered and matched with {!Match_op.emit_group}. *)

val iterator :
  kind:Match_op.kind ->
  left_key:int list ->
  right_key:int list ->
  left_arity:int ->
  right_arity:int ->
  left:Volcano.Iterator.t ->
  right:Volcano.Iterator.t ->
  Volcano.Iterator.t
(** [left_key] and [right_key] must have equal length; keys are compared
    column-wise with the value ordering. *)
