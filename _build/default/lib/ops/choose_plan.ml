module Iterator = Volcano.Iterator

let iterator ~decide ~alternatives =
  if Array.length alternatives = 0 then
    invalid_arg "Choose_plan: no alternatives";
  let chosen = ref None in
  Iterator.make
    ~open_:(fun () ->
      let index = decide () in
      if index < 0 || index >= Array.length alternatives then
        invalid_arg
          (Printf.sprintf "Choose_plan: decision %d out of range [0, %d)" index
             (Array.length alternatives));
      let alternative = alternatives.(index) in
      Iterator.open_ alternative;
      chosen := Some alternative)
    ~next:(fun () ->
      match !chosen with
      | None -> invalid_arg "Choose_plan: not open"
      | Some alternative -> Iterator.next alternative)
    ~close:(fun () ->
      match !chosen with
      | None -> ()
      | Some alternative ->
          Iterator.close alternative;
          chosen := None)
