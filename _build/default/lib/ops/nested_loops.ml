module Iterator = Volcano.Iterator
module Tuple = Volcano_tuple.Tuple

let join ~pred ~left ~right =
  let inner = ref [||] in
  let outer_tuple = ref None in
  let inner_pos = ref 0 in
  Iterator.make
    ~open_:(fun () ->
      inner := Array.of_list (Iterator.to_list right);
      Iterator.open_ left;
      outer_tuple := None;
      inner_pos := 0)
    ~next:(fun () ->
      let rec step () =
        match !outer_tuple with
        | None -> (
            match Iterator.next left with
            | None -> None
            | Some tuple ->
                outer_tuple := Some tuple;
                inner_pos := 0;
                step ())
        | Some outer ->
            if !inner_pos >= Array.length !inner then begin
              outer_tuple := None;
              step ()
            end
            else begin
              let candidate = Tuple.concat outer !inner.(!inner_pos) in
              incr inner_pos;
              if pred candidate then Some candidate else step ()
            end
      in
      step ())
    ~close:(fun () -> Iterator.close left)

let cross ~left ~right = join ~pred:(fun _ -> true) ~left ~right
