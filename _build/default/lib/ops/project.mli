(** Projection: by column positions or by general expressions (computed
    columns use the compiled expression path). *)

val columns : int list -> Volcano.Iterator.t -> Volcano.Iterator.t

val exprs : Volcano_tuple.Expr.num list -> Volcano.Iterator.t -> Volcano.Iterator.t

val map :
  (Volcano_tuple.Tuple.t -> Volcano_tuple.Tuple.t) ->
  Volcano.Iterator.t ->
  Volcano.Iterator.t
(** Arbitrary per-tuple support function. *)
