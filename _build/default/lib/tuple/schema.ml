type field = { name : string; ty : Value.ty }
type t = field array

let make fields =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem seen f.name then
        invalid_arg ("Schema.make: duplicate field " ^ f.name);
      Hashtbl.add seen f.name ())
    fields;
  Array.of_list fields

let of_names pairs = make (List.map (fun (name, ty) -> { name; ty }) pairs)

let fields t = t
let arity t = Array.length t

let find_index t name =
  let rec search i =
    if i >= Array.length t then None
    else if String.equal t.(i).name name then Some i
    else search (i + 1)
  in
  search 0

let index t name =
  match find_index t name with Some i -> i | None -> raise Not_found

let field_name t i = t.(i).name
let field_ty t i = t.(i).ty

let concat a b =
  let taken = Hashtbl.create 16 in
  Array.iter (fun f -> Hashtbl.add taken f.name ()) a;
  let rename f =
    if Hashtbl.mem taken f.name then { f with name = f.name ^ "'" } else f
  in
  Array.append a (Array.map rename b)

let project t indices = Array.of_list (List.map (fun i -> t.(i)) indices)

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> String.equal x.name y.name && x.ty = y.ty) a b

let pp ppf t =
  Format.fprintf ppf "(";
  Array.iteri
    (fun i f ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%s:%s" f.name (Value.ty_to_string f.ty))
    t;
  Format.fprintf ppf ")"
