(** Relation schemas: ordered, named, typed fields. *)

type field = { name : string; ty : Value.ty }
type t

val make : field list -> t
(** @raise Invalid_argument on duplicate field names. *)

val of_names : (string * Value.ty) list -> t
val fields : t -> field array
val arity : t -> int

val index : t -> string -> int
(** Position of a named field.  @raise Not_found if absent. *)

val find_index : t -> string -> int option
val field_name : t -> int -> string
val field_ty : t -> int -> Value.ty

val concat : t -> t -> t
(** Schema of the concatenation of two tuples (join output).  Name clashes
    are resolved by suffixing the right-hand field with ["'"]. *)

val project : t -> int list -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
