(** Field values.

    Volcano's operators never inspect record contents directly; all access
    goes through support functions (paper, section 3).  This module provides
    the value representation those support functions are built from. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string

type ty = Tint | Tfloat | Tstr

val type_of : t -> ty option
(** [None] for [Null]. *)

val compare : t -> t -> int
(** Total order: [Null] sorts first; values of distinct types are ordered by
    type tag ([Int < Float < Str]); within a type the natural order. *)

val equal : t -> t -> bool

val hash : t -> int
(** Deterministic (seed-free) hash, identical across domains and runs. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Coercions raising [Invalid_argument] on a type mismatch. *)

val int_exn : t -> int
val float_exn : t -> float
val str_exn : t -> string

val ty_to_string : ty -> string
