let tag_null = 0
let tag_int = 1
let tag_float = 2
let tag_str = 3

let field_size = function
  | Value.Null -> 1
  | Value.Int _ -> 9
  | Value.Float _ -> 9
  | Value.Str s ->
      if String.length s > 0xffff then invalid_arg "Serial: string too long";
      3 + String.length s

let encoded_size t = Array.fold_left (fun acc v -> acc + field_size v) 2 t

let encode_into t buf ~pos =
  let size = encoded_size t in
  if pos + size > Bytes.length buf then invalid_arg "Serial.encode_into: buffer too small";
  Bytes.set_uint16_le buf pos (Array.length t);
  let cursor = ref (pos + 2) in
  let put_field v =
    match v with
    | Value.Null ->
        Bytes.set_uint8 buf !cursor tag_null;
        cursor := !cursor + 1
    | Value.Int x ->
        Bytes.set_uint8 buf !cursor tag_int;
        Bytes.set_int64_le buf (!cursor + 1) (Int64.of_int x);
        cursor := !cursor + 9
    | Value.Float x ->
        Bytes.set_uint8 buf !cursor tag_float;
        Bytes.set_int64_le buf (!cursor + 1) (Int64.bits_of_float x);
        cursor := !cursor + 9
    | Value.Str s ->
        Bytes.set_uint8 buf !cursor tag_str;
        Bytes.set_uint16_le buf (!cursor + 1) (String.length s);
        Bytes.blit_string s 0 buf (!cursor + 3) (String.length s);
        cursor := !cursor + 3 + String.length s
  in
  Array.iter put_field t;
  size

let encode t =
  let buf = Bytes.create (encoded_size t) in
  let _ = encode_into t buf ~pos:0 in
  buf

let decode buf ~pos =
  if pos + 2 > Bytes.length buf then invalid_arg "Serial.decode: truncated header";
  let nfields = Bytes.get_uint16_le buf pos in
  let cursor = ref (pos + 2) in
  let need n =
    if !cursor + n > Bytes.length buf then invalid_arg "Serial.decode: truncated field"
  in
  let get_field () =
    need 1;
    let tag = Bytes.get_uint8 buf !cursor in
    if tag = tag_null then begin
      cursor := !cursor + 1;
      Value.Null
    end
    else if tag = tag_int then begin
      need 9;
      let x = Int64.to_int (Bytes.get_int64_le buf (!cursor + 1)) in
      cursor := !cursor + 9;
      Value.Int x
    end
    else if tag = tag_float then begin
      need 9;
      let x = Int64.float_of_bits (Bytes.get_int64_le buf (!cursor + 1)) in
      cursor := !cursor + 9;
      Value.Float x
    end
    else if tag = tag_str then begin
      need 3;
      let len = Bytes.get_uint16_le buf (!cursor + 1) in
      need (3 + len);
      let s = Bytes.sub_string buf (!cursor + 3) len in
      cursor := !cursor + 3 + len;
      Value.Str s
    end
    else invalid_arg "Serial.decode: bad tag"
  in
  Array.init nfields (fun _ -> get_field ())

let decode_bytes buf = decode buf ~pos:0
