(** Tuples (records).

    A tuple is an immutable-by-convention array of field values.  Operators
    receive support functions (comparators, hash functions, predicates) and
    never interpret tuple structure themselves, mirroring Volcano's untyped
    records plus support-function discipline. *)

type t = Value.t array

val make : Value.t list -> t
val arity : t -> int
val get : t -> int -> Value.t
val int_exn : t -> int -> int
val float_exn : t -> int -> float
val str_exn : t -> int -> string

val of_ints : int list -> t
(** Convenience constructor for tests and benchmarks. *)

val concat : t -> t -> t
val project : t -> int list -> t

val compare : t -> t -> int
(** Lexicographic over all fields. *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
