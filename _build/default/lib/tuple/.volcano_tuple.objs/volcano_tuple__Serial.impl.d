lib/tuple/serial.ml: Array Bytes Int64 String Value
