lib/tuple/expr.ml: Array Float Format Stdlib String Value
