lib/tuple/expr.mli: Format Tuple Value
