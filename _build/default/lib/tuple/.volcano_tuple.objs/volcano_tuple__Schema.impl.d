lib/tuple/schema.ml: Array Format Hashtbl List String Value
