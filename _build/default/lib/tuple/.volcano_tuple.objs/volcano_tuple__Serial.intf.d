lib/tuple/serial.mli: Tuple
