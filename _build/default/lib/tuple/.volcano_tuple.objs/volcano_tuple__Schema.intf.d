lib/tuple/schema.mli: Format Value
