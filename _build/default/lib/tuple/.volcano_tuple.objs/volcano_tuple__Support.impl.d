lib/tuple/support.ml: Array Expr List Tuple Value
