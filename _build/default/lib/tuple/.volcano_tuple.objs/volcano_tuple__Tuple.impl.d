lib/tuple/tuple.ml: Array Format List Value
