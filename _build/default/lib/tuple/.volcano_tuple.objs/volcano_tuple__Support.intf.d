lib/tuple/support.mli: Expr Tuple Value
