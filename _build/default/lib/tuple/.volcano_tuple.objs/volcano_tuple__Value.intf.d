lib/tuple/value.mli: Format
