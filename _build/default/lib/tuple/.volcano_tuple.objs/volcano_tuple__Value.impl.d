lib/tuple/value.ml: Char Format Int64 Stdlib String
