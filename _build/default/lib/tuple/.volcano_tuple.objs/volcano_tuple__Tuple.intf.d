lib/tuple/tuple.mli: Format Value
