(** Binary serialization of tuples for storage in slotted pages.

    Layout: a 2-byte field count, then per field a 1-byte tag followed by the
    payload (ints and floats as 8 bytes little-endian, strings as a 2-byte
    length plus bytes, nulls as the tag alone). *)

val encoded_size : Tuple.t -> int

val encode : Tuple.t -> bytes

val encode_into : Tuple.t -> bytes -> pos:int -> int
(** [encode_into t buf ~pos] writes at [pos] and returns the bytes written.
    @raise Invalid_argument if the buffer is too small. *)

val decode : bytes -> pos:int -> Tuple.t
(** @raise Invalid_argument on malformed input. *)

val decode_bytes : bytes -> Tuple.t
(** Decode a buffer produced by {!encode}. *)
