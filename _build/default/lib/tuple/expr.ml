type num =
  | Col of int
  | Const of Value.t
  | Add of num * num
  | Sub of num * num
  | Mul of num * num
  | Div of num * num
  | Neg of num
  | Mod of num * num

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | True
  | False
  | Cmp of cmp_op * num * num
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | Is_null of num
  | Str_prefix of string * num

let col i = Col i
let int x = Const (Value.Int x)
let str s = Const (Value.Str s)
let not_ p = Not p

module Infix = struct
  let ( + ) a b = Add (a, b)
  let ( - ) a b = Sub (a, b)
  let ( * ) a b = Mul (a, b)
  let ( = ) a b = Cmp (Eq, a, b)
  let ( <> ) a b = Cmp (Ne, a, b)
  let ( < ) a b = Cmp (Lt, a, b)
  let ( <= ) a b = Cmp (Le, a, b)
  let ( > ) a b = Cmp (Gt, a, b)
  let ( >= ) a b = Cmp (Ge, a, b)
  let ( && ) a b = And (a, b)
  let ( || ) a b = Or (a, b)
end

(* Arithmetic with numeric promotion: int op int stays int (division by zero
   yields Null rather than raising, so that malformed data cannot abort a
   query pipeline); anything involving a float is float; Null propagates. *)
let arith int_op float_op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> int_op x y
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
      Value.Float (float_op (Value.float_exn a) (Value.float_exn b))
  | _ -> Value.Null

let add = arith (fun x y -> Value.Int (Stdlib.( + ) x y)) Stdlib.( +. )
let sub = arith (fun x y -> Value.Int (Stdlib.( - ) x y)) Stdlib.( -. )
let mul = arith (fun x y -> Value.Int (Stdlib.( * ) x y)) Stdlib.( *. )

let div =
  arith
    (fun x y -> if Stdlib.( = ) y 0 then Value.Null else Value.Int (Stdlib.( / ) x y))
    (fun x y -> Stdlib.( /. ) x y)

let rem =
  arith
    (fun x y -> if Stdlib.( = ) y 0 then Value.Null else Value.Int (Stdlib.(mod) x y))
    Float.rem

let neg = function
  | Value.Int x -> Value.Int (Stdlib.( - ) 0 x)
  | Value.Float x -> Value.Float (Stdlib.( -. ) 0.0 x)
  | _ -> Value.Null

let cmp_holds op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> false
  | _ ->
      let c = Value.compare a b in
      (match op with
      | Eq -> Stdlib.( = ) c 0
      | Ne -> Stdlib.( <> ) c 0
      | Lt -> Stdlib.( < ) c 0
      | Le -> Stdlib.( <= ) c 0
      | Gt -> Stdlib.( > ) c 0
      | Ge -> Stdlib.( >= ) c 0)

module Interp = struct
  let rec num e tuple =
    match e with
    | Col i -> tuple.(i)
    | Const v -> v
    | Add (a, b) -> add (num a tuple) (num b tuple)
    | Sub (a, b) -> sub (num a tuple) (num b tuple)
    | Mul (a, b) -> mul (num a tuple) (num b tuple)
    | Div (a, b) -> div (num a tuple) (num b tuple)
    | Mod (a, b) -> rem (num a tuple) (num b tuple)
    | Neg a -> neg (num a tuple)

  let rec pred p tuple =
    match p with
    | True -> true
    | False -> false
    | Cmp (op, a, b) -> cmp_holds op (num a tuple) (num b tuple)
    | And (a, b) -> pred a tuple && pred b tuple
    | Or (a, b) -> pred a tuple || pred b tuple
    | Not a -> not (pred a tuple)
    | Is_null a -> (match num a tuple with Value.Null -> true | _ -> false)
    | Str_prefix (prefix, a) -> (
        match num a tuple with
        | Value.Str s ->
            String.length s >= String.length prefix
            && String.equal (String.sub s 0 (String.length prefix)) prefix
        | _ -> false)
end

module Compiled = struct
  (* Translate the AST into closures once; the result never revisits it. *)
  let rec num e =
    match e with
    | Col i -> fun tuple -> tuple.(i)
    | Const v -> fun _ -> v
    | Add (a, b) ->
        let fa = num a and fb = num b in
        fun tuple -> add (fa tuple) (fb tuple)
    | Sub (a, b) ->
        let fa = num a and fb = num b in
        fun tuple -> sub (fa tuple) (fb tuple)
    | Mul (a, b) ->
        let fa = num a and fb = num b in
        fun tuple -> mul (fa tuple) (fb tuple)
    | Div (a, b) ->
        let fa = num a and fb = num b in
        fun tuple -> div (fa tuple) (fb tuple)
    | Mod (a, b) ->
        let fa = num a and fb = num b in
        fun tuple -> rem (fa tuple) (fb tuple)
    | Neg a ->
        let fa = num a in
        fun tuple -> neg (fa tuple)

  let rec pred p =
    match p with
    | True -> fun _ -> true
    | False -> fun _ -> false
    | Cmp (op, a, b) ->
        let fa = num a and fb = num b in
        fun tuple -> cmp_holds op (fa tuple) (fb tuple)
    | And (a, b) ->
        let fa = pred a and fb = pred b in
        fun tuple -> fa tuple && fb tuple
    | Or (a, b) ->
        let fa = pred a and fb = pred b in
        fun tuple -> fa tuple || fb tuple
    | Not a ->
        let fa = pred a in
        fun tuple -> not (fa tuple)
    | Is_null a ->
        let fa = num a in
        fun tuple -> (match fa tuple with Value.Null -> true | _ -> false)
    | Str_prefix (prefix, a) ->
        let fa = num a in
        let plen = String.length prefix in
        fun tuple ->
          (match fa tuple with
          | Value.Str s ->
              String.length s >= plen && String.equal (String.sub s 0 plen) prefix
          | _ -> false)
end

let cmp_op_to_string = function
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec pp_num ppf = function
  | Col i -> Format.fprintf ppf "$%d" i
  | Const v -> Value.pp ppf v
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp_num a pp_num b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_num a pp_num b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp_num a pp_num b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp_num a pp_num b
  | Mod (a, b) -> Format.fprintf ppf "(%a %% %a)" pp_num a pp_num b
  | Neg a -> Format.fprintf ppf "(- %a)" pp_num a

let rec pp_pred ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Cmp (op, a, b) ->
      Format.fprintf ppf "%a %s %a" pp_num a (cmp_op_to_string op) pp_num b
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp_pred a pp_pred b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp_pred a pp_pred b
  | Not a -> Format.fprintf ppf "(not %a)" pp_pred a
  | Is_null a -> Format.fprintf ppf "%a is null" pp_num a
  | Str_prefix (p, a) -> Format.fprintf ppf "%a like %S%%" pp_num a p
