type t =
  | Null
  | Int of int
  | Float of float
  | Str of string

type ty = Tint | Tfloat | Tstr

let type_of = function
  | Null -> None
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | Str _ -> Some Tstr

let tag_rank = function Null -> 0 | Int _ -> 1 | Float _ -> 2 | Str _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Stdlib.compare (x : int) y
  | Float x, Float y -> Stdlib.compare (x : float) y
  | Str x, Str y -> Stdlib.compare (x : string) y
  | _, _ -> Stdlib.compare (tag_rank a) (tag_rank b)

let equal a b = compare a b = 0

(* FNV-1a over a canonical byte rendering; stable across runs and domains,
   which hash partitioning requires for deterministic tests. *)
let fnv_offset = Int64.to_int 0xcbf29ce484222325L land max_int
let fnv_prime = 0x100000001b3

let hash_bytes h s =
  let h = ref h in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * fnv_prime land max_int)
    s;
  !h

let hash_int h x =
  let h = ref h in
  for shift = 0 to 7 do
    let byte = (x lsr (shift * 8)) land 0xff in
    h := (!h lxor byte) * fnv_prime land max_int
  done;
  !h

let hash = function
  | Null -> hash_int fnv_offset 0x6e756c6c
  | Int x -> hash_int (hash_int fnv_offset 1) x
  | Float x -> hash_int (hash_int fnv_offset 2) (Int64.to_int (Int64.bits_of_float x))
  | Str s -> hash_bytes (hash_int fnv_offset 3) s

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Int x -> Format.pp_print_int ppf x
  | Float x -> Format.fprintf ppf "%g" x
  | Str s -> Format.fprintf ppf "%S" s

let to_string v = Format.asprintf "%a" pp v

let int_exn = function
  | Int x -> x
  | v -> invalid_arg ("Value.int_exn: " ^ to_string v)

let float_exn = function
  | Float x -> x
  | Int x -> float_of_int x
  | v -> invalid_arg ("Value.float_exn: " ^ to_string v)

let str_exn = function
  | Str s -> s
  | v -> invalid_arg ("Value.str_exn: " ^ to_string v)

let ty_to_string = function Tint -> "int" | Tfloat -> "float" | Tstr -> "string"
