lib/sim/sim.ml: Array List Queue Volcano_util
