lib/sim/calibration.mli: Sim
