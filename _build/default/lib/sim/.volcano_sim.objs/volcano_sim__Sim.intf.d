lib/sim/sim.mli:
