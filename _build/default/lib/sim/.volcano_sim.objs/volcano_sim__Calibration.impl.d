lib/sim/calibration.ml: Sim
