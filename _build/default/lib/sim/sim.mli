(** A discrete-event simulator of exchange pipelines on a [P]-CPU
    shared-memory multiprocessor.

    This container has one CPU, so the paper's wall-clock results — measured
    on a 12-CPU Sequent Symmetry — cannot be observed directly.  The
    simulator models the same structure the real engine executes: process
    groups per pipeline stage, packets of configurable size, per-queue flow
    control with bounded slack, and CPU contention (at most [cpus] processes
    run at once; a process runs burst-to-block without preemption).

    Costs are supplied per stage (seconds of CPU per record and per packet);
    {!Calibration} derives them from the paper's own measurements so that
    simulated results land near the published numbers. *)

type stage = {
  processes : int;
  per_record : float;  (** CPU seconds of real work per record *)
  per_packet_send : float;  (** CPU seconds per packet inserted into a port *)
  per_packet_recv : float;  (** CPU seconds per packet removed from a port *)
}

type params = {
  stages : stage array;
      (** stage 0 produces records; the last stage only consumes *)
  records : int;  (** records produced in total by stage 0 *)
  packet_size : int;
  flow_slack : int option;  (** per-queue slack in packets; [None] = unbounded *)
  cpus : int;
}

type result = {
  elapsed : float;  (** simulated wall time, seconds *)
  stage_busy : float array;  (** summed CPU time per stage *)
  packets_total : int;
  max_queue_depth : int;
}

val run : params -> result
(** @raise Invalid_argument on nonsensical parameters. *)

val speedup : base:result -> result -> float
(** base.elapsed / this.elapsed *)
