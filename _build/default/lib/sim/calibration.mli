(** Cost constants calibrated from the paper's own measurements (section 5)
    so that the simulator reproduces the published numbers on the simulated
    Sequent Symmetry.

    Derivation (all per record unless noted):
    - single-process create+release of 100,000 records took 20.28 s, so
      create + unfix = 202.8 us; we apportion 80 us to record creation and
      122.8 us to the buffer-manager unfix call, consistent with "the
      performance is limited by the consumer process which must invoke the
      buffer manager once for each record" (section 5);
    - three no-fork exchanges added (28.00 - 20.28)/3/100,000 s
      = 25.7 us/record/exchange; we split it evenly between the sending and
      the receiving half;
    - the packet-size sweep (Figure 2a) shows elapsed time roughly halving
      from 171 s to 94 s when going from 1- to 2-record packets, giving a
      per-packet port cost of about 1.6 ms, apportioned to the receiving
      side (semaphore wait, scheduling) with a smaller share on the sender.

    With these constants the simulator lands on 171.8 / 91.8 / 15.0 / 13.7 s
    for packet sizes 1 / 2 / 50 / 83 against the paper's 171 / 94 / 15.0 /
    13.7 s. *)

val sequent_cpus : int
(** 12, with one CPU typically kept for the OS in the paper's runs. *)

val create_cost : float
(** Record creation (fill 4 integers), seconds. *)

val unfix_cost : float
(** Consumer-side buffer-manager call per record, seconds. *)

val xfer_send_cost : float
val xfer_recv_cost : float
(** Per-record halves of the 25.7 us/record/exchange overhead. *)

val packet_send_cost : float
val packet_recv_cost : float
(** Per-packet port costs. *)

(** {2 Paper scenarios} *)

val t1_pipeline : ?flow_slack:int option -> records:int -> unit -> Sim.result
(** The section 5 four-process pipeline (create | xfer | xfer | unfix). *)

val fig2a :
  packet_size:int -> ?records:int -> ?flow_slack:int option -> unit -> Sim.result
(** The Figure 2a topology: 3 producers, two 3-process intermediate groups,
    one consumer; default 100,000 records, flow slack 3. *)

val t1_single_process : records:int -> float
(** Analytic single-process elapsed time (no exchange). *)

val t1_interchange : records:int -> exchanges:int -> float
(** Analytic no-fork elapsed time: single process plus procedure-call
    exchange overhead per boundary. *)

val intra_op_speedup :
  degree:int ->
  ?records:int ->
  ?per_record:float ->
  ?cpus:int ->
  unit ->
  Sim.result
(** Intra-operator parallelism scenario for speedup curves: [degree]
    worker processes each handling a slice, streaming to one consumer. *)
