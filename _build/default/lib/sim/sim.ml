module Binheap = Volcano_util.Binheap

type stage = {
  processes : int;
  per_record : float;
  per_packet_send : float;
  per_packet_recv : float;
}

type params = {
  stages : stage array;
  records : int;
  packet_size : int;
  flow_slack : int option;
  cpus : int;
}

type result = {
  elapsed : float;
  stage_busy : float array;
  packets_total : int;
  max_queue_depth : int;
}

(* Process states.  A burst is a span of CPU time; deliveries and state
   transitions happen instantaneously at burst completion. *)
type proc_state =
  | Ready
  | Running
  | Blocked_flow of int (* queue index the pending packet is destined for *)
  | Waiting_input
  | Finished

type proc = {
  stage : int;
  index : int;
  mutable state : proc_state;
  mutable remaining : int; (* producer stages: records still to produce *)
  mutable pending_len : int; (* packet built/held, waiting or in flight *)
  mutable rr : int; (* round-robin cursor over next-stage consumers *)
}

type queue = {
  packets : int Queue.t; (* packet lengths *)
  mutable open_producers : int;
  flow_waiters : (int * int) Queue.t; (* (proc id, packet length) *)
  consumer : int; (* proc id served by this queue *)
}

let run params =
  let n_stages = Array.length params.stages in
  if n_stages < 2 then invalid_arg "Sim.run: need at least two stages";
  if params.records < 0 || params.packet_size < 1 || params.cpus < 1 then
    invalid_arg "Sim.run: bad parameters";
  Array.iter
    (fun s -> if s.processes < 1 then invalid_arg "Sim.run: empty stage")
    params.stages;

  (* Flatten processes: proc id = offset of stage + index. *)
  let stage_offset = Array.make n_stages 0 in
  for s = 1 to n_stages - 1 do
    stage_offset.(s) <- stage_offset.(s - 1) + params.stages.(s - 1).processes
  done;
  let n_procs = stage_offset.(n_stages - 1) + params.stages.(n_stages - 1).processes in
  let procs =
    Array.init n_procs (fun id ->
        let rec find s = if id < stage_offset.(s) + params.stages.(s).processes then s else find (s + 1) in
        let stage = find 0 in
        { stage; index = id - stage_offset.(stage); state = Ready; remaining = 0; pending_len = 0; rr = 0 })
  in
  (* Producer shares of the record count. *)
  let first = params.stages.(0).processes in
  for i = 0 to first - 1 do
    let share = (params.records / first) + (if i < params.records mod first then 1 else 0) in
    procs.(stage_offset.(0) + i).remaining <- share;
    procs.(stage_offset.(0) + i).rr <- i
  done;
  Array.iteri
    (fun id p -> if p.stage > 0 then procs.(id).state <- Waiting_input)
    procs;

  (* One input queue per non-stage-0 process. *)
  let queue_of_proc = Array.make n_procs (-1) in
  let queues = ref [] in
  let n_queues = ref 0 in
  for id = 0 to n_procs - 1 do
    let p = procs.(id) in
    if p.stage > 0 then begin
      queue_of_proc.(id) <- !n_queues;
      incr n_queues;
      queues :=
        {
          packets = Queue.create ();
          open_producers = params.stages.(p.stage - 1).processes;
          flow_waiters = Queue.create ();
          consumer = id;
        }
        :: !queues
    end
  done;
  let queues = Array.of_list (List.rev !queues) in

  (* Engine state. *)
  let clock = ref 0.0 in
  let seq = ref 0 in
  let events =
    Binheap.create ~cmp:(fun (ta, sa, _) (tb, sb, _) ->
        let c = compare (ta : float) tb in
        if c <> 0 then c else compare (sa : int) sb)
  in
  let ready = Queue.create () in
  let running = ref 0 in
  let stage_busy = Array.make n_stages 0.0 in
  let packets_total = ref 0 in
  let max_depth = ref 0 in

  let next_stage_consumers stage =
    let s = stage + 1 in
    List.init params.stages.(s).processes (fun i -> stage_offset.(s) + i)
  in

  let make_ready id =
    let p = procs.(id) in
    if p.state <> Finished then begin
      p.state <- Ready;
      Queue.push id ready
    end
  in

  (* Burst duration for the next unit of work of process [id]; None if the
     process has nothing to run right now. *)
  let burst_duration id =
    let p = procs.(id) in
    let stage = params.stages.(p.stage) in
    if p.stage = 0 then begin
      let len = min params.packet_size p.remaining in
      if len = 0 then None
      else begin
        p.pending_len <- len;
        Some ((float_of_int len *. stage.per_record) +. stage.per_packet_send)
      end
    end
    else begin
      let q = queues.(queue_of_proc.(id)) in
      match Queue.take_opt q.packets with
      | None -> None
      | Some len ->
          (* Free a flow slot: admit one blocked producer's packet. *)
          (match Queue.take_opt q.flow_waiters with
          | Some (waiter, wlen) ->
              Queue.push wlen q.packets;
              make_ready waiter
          | None -> ());
          p.pending_len <- len;
          let send =
            if p.stage = n_stages - 1 then 0.0 else stage.per_packet_send
          in
          Some
            (stage.per_packet_recv
            +. (float_of_int len *. stage.per_record)
            +. send)
    end
  in

  (* The engine: dispatch ready processes onto CPUs; at burst completion,
     deliver packets, propagate end-of-stream, finish processes. *)
  let rec dispatch () =
    if !running < params.cpus && not (Queue.is_empty ready) then begin
      let id = Queue.pop ready in
      let p = procs.(id) in
      (if p.state = Ready then
         match burst_duration id with
         | Some duration ->
             p.state <- Running;
             running := !running + 1;
             stage_busy.(p.stage) <- stage_busy.(p.stage) +. duration;
             incr seq;
             Binheap.push events (!clock +. duration, !seq, id)
         | None -> starve id);
      dispatch ()
    end

  (* A process with nothing to run: producers are done; consumers either
     wait for input or, if all their producers finished, finish too. *)
  and starve id =
    let p = procs.(id) in
    if p.stage = 0 then finish id
    else begin
      let q = queues.(queue_of_proc.(id)) in
      if q.open_producers = 0 && Queue.is_empty q.packets then finish id
      else p.state <- Waiting_input
    end

  and finish id =
    let p = procs.(id) in
    if p.state <> Finished then begin
      p.state <- Finished;
      if p.stage < n_stages - 1 then
        List.iter
          (fun consumer ->
            let q = queues.(queue_of_proc.(consumer)) in
            q.open_producers <- q.open_producers - 1;
            if q.open_producers = 0 && Queue.is_empty q.packets then begin
              let c = procs.(consumer) in
              if c.state = Waiting_input then finish consumer
            end)
          (next_stage_consumers p.stage)
    end

  (* Deliver a packet of length [len] from [id] to the next stage, blocking
     on flow control if the target queue is full. *)
  and deliver id len =
    let p = procs.(id) in
    let consumers = next_stage_consumers p.stage in
    let n = List.length consumers in
    let target = List.nth consumers (p.rr mod n) in
    p.rr <- p.rr + 1;
    let q = queues.(queue_of_proc.(target)) in
    let full =
      match params.flow_slack with
      | Some slack -> Queue.length q.packets >= slack
      | None -> false
    in
    incr packets_total;
    if full then begin
      Queue.push (id, len) q.flow_waiters;
      p.state <- Blocked_flow queue_of_proc.(target)
    end
    else begin
      Queue.push len q.packets;
      let depth = Queue.length q.packets in
      if depth > !max_depth then max_depth := depth;
      make_ready id;
      let c = procs.(target) in
      if c.state = Waiting_input then make_ready target
    end

  (* Completion of a burst. *)
  and complete id =
    let p = procs.(id) in
    running := !running - 1;
    let len = p.pending_len in
    p.pending_len <- 0;
    if p.stage = 0 then begin
      p.remaining <- p.remaining - len;
      deliver id len
      (* A producer with no records left finishes when it next starves in
         dispatch (or after its blocked packet is admitted). *)
    end
    else if p.stage = n_stages - 1 then make_ready id
    else deliver id len
  in

  for id = 0 to n_procs - 1 do
    if procs.(id).stage = 0 then Queue.push id ready
  done;
  dispatch ();
  let rec loop () =
    match Binheap.pop events with
    | None -> ()
    | Some (t, _, id) ->
        clock := t;
        complete id;
        dispatch ();
        loop ()
  in
  loop ();
  {
    elapsed = !clock;
    stage_busy;
    packets_total = !packets_total;
    max_queue_depth = !max_depth;
  }

let speedup ~base result = base.elapsed /. result.elapsed
