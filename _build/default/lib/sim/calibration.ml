let sequent_cpus = 12

let create_cost = 97.8e-6
let unfix_cost = 105.0e-6
let xfer_send_cost = 12.85e-6
let xfer_recv_cost = 12.85e-6
let packet_send_cost = 0.45e-3
let packet_recv_cost = 1.60e-3

let t1_pipeline ?(flow_slack = Some 4) ~records () =
  Sim.run
    {
      Sim.stages =
        [|
          {
            processes = 1;
            per_record = create_cost +. xfer_send_cost;
            per_packet_send = packet_send_cost;
            per_packet_recv = 0.0;
          };
          {
            processes = 1;
            per_record = xfer_recv_cost +. xfer_send_cost;
            per_packet_send = packet_send_cost;
            per_packet_recv = packet_recv_cost;
          };
          {
            processes = 1;
            per_record = xfer_recv_cost +. xfer_send_cost;
            per_packet_send = packet_send_cost;
            per_packet_recv = packet_recv_cost;
          };
          {
            processes = 1;
            per_record = xfer_recv_cost +. unfix_cost;
            per_packet_send = 0.0;
            per_packet_recv = packet_recv_cost;
          };
        |];
      records;
      packet_size = 83 (* the paper's standard packet size *);
      flow_slack;
      cpus = sequent_cpus;
    }

let fig2a ~packet_size ?(records = 100_000) ?(flow_slack = Some 3) () =
  Sim.run
    {
      Sim.stages =
        [|
          {
            processes = 3;
            per_record = create_cost +. xfer_send_cost;
            per_packet_send = packet_send_cost;
            per_packet_recv = 0.0;
          };
          {
            processes = 3;
            per_record = xfer_recv_cost +. xfer_send_cost;
            per_packet_send = packet_send_cost;
            per_packet_recv = packet_recv_cost;
          };
          {
            processes = 3;
            per_record = xfer_recv_cost +. xfer_send_cost;
            per_packet_send = packet_send_cost;
            per_packet_recv = packet_recv_cost;
          };
          {
            processes = 1;
            per_record = xfer_recv_cost +. unfix_cost;
            per_packet_send = 0.0;
            per_packet_recv = packet_recv_cost;
          };
        |];
      records;
      packet_size;
      flow_slack;
      cpus = sequent_cpus;
    }

let t1_single_process ~records =
  float_of_int records *. (create_cost +. unfix_cost)

let t1_interchange ~records ~exchanges =
  t1_single_process ~records
  +. (float_of_int records
     *. float_of_int exchanges
     *. (xfer_send_cost +. xfer_recv_cost))

let intra_op_speedup ~degree ?(records = 100_000) ?(per_record = 1.0e-3)
    ?(cpus = sequent_cpus) () =
  Sim.run
    {
      Sim.stages =
        [|
          {
            processes = degree;
            per_record = per_record +. xfer_send_cost;
            per_packet_send = packet_send_cost;
            per_packet_recv = 0.0;
          };
          {
            processes = 1;
            per_record = xfer_recv_cost +. unfix_cost;
            per_packet_send = 0.0;
            per_packet_recv = packet_recv_cost;
          };
        |];
      records;
      packet_size = 83 (* the paper's standard packet size *);
      flow_slack = Some 4;
      cpus;
    }
