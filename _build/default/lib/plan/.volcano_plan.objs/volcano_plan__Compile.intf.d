lib/plan/compile.mli: Env Plan Volcano Volcano_tuple
