lib/plan/plan.ml: Env Format List Printf String Volcano Volcano_ops Volcano_storage Volcano_tuple
