lib/plan/parallel.mli: Plan Volcano_ops Volcano_tuple
