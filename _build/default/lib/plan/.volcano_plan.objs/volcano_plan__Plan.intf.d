lib/plan/plan.mli: Env Format Volcano Volcano_ops Volcano_tuple
