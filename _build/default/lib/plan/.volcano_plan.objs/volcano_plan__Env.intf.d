lib/plan/env.mli: Volcano_btree Volcano_ops Volcano_storage Volcano_tuple
