lib/plan/env.ml: Bytes Fun Hashtbl Mutex Volcano_btree Volcano_ops Volcano_storage Volcano_tuple
