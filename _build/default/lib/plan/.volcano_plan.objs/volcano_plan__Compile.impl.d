lib/plan/compile.ml: Array Bytes Env List Plan Printf Volcano Volcano_btree Volcano_ops Volcano_tuple
