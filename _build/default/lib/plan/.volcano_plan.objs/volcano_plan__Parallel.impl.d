lib/plan/parallel.ml: Fun List Plan Volcano Volcano_ops Volcano_tuple
