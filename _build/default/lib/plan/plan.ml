module Schema = Volcano_tuple.Schema
module Expr = Volcano_tuple.Expr
module Match_op = Volcano_ops.Match_op
module Exchange = Volcano.Exchange

type algo = Sort_based | Hash_based

type index_bound =
  | Ix_unbounded
  | Ix_inclusive of Volcano_tuple.Tuple.t
  | Ix_exclusive of Volcano_tuple.Tuple.t

type t =
  | Scan_table of string
  | Scan_table_slice of string
  | Scan_index of { index : string; lo : index_bound; hi : index_bound }
  | Scan_list of { arity : int; tuples : Volcano_tuple.Tuple.t list }
  | Generate of { arity : int; count : int; gen : int -> Volcano_tuple.Tuple.t }
  | Generate_slice of {
      arity : int;
      count : int;
      gen : int -> Volcano_tuple.Tuple.t;
    }
  | Filter of {
      pred : Expr.pred;
      mode : [ `Compiled | `Interpreted ];
      input : t;
    }
  | Project_cols of { cols : int list; input : t }
  | Project_exprs of { exprs : Expr.num list; input : t }
  | Sort of { key : Volcano_tuple.Support.sort_key; input : t }
  | Match of {
      algo : algo;
      kind : Match_op.kind;
      left_key : int list;
      right_key : int list;
      left : t;
      right : t;
    }
  | Cross of { left : t; right : t }
  | Theta_join of { pred : Expr.pred; left : t; right : t }
  | Aggregate of {
      algo : algo;
      group_by : int list;
      aggs : Volcano_ops.Aggregate.agg list;
      input : t;
    }
  | Distinct of { algo : algo; on : int list; input : t }
  | Division of {
      algo : [ `Hash | `Count | `Sort ];
      quotient : int list;
      divisor_attrs : int list;
      divisor_key : int list;
      dividend : t;
      divisor : t;
    }
  | Limit of { count : int; input : t }
  | Choose of { decide : unit -> int; alternatives : t list }
  | Exchange of { cfg : Exchange.config; input : t }
  | Exchange_merge of {
      cfg : Exchange.config;
      key : Volcano_tuple.Support.sort_key;
      input : t;
    }
  | Interchange of { cfg : Exchange.config; input : t }

let rec arity env plan =
  match plan with
  | Scan_table name | Scan_table_slice name ->
      let _, schema = Env.table env name in
      Schema.arity schema
  | Scan_index { index; _ } ->
      let _, file, _ = Env.index env index in
      let _ = file in
      (* the fetch returns base-table records; find its schema via the
         catalog *)
      let rec width = function
        | [] -> invalid_arg "Plan.arity: index over unregistered table"
        | name :: rest -> (
            match Env.table env name with
            | f, schema
              when Volcano_storage.Heap_file.name f
                   = Volcano_storage.Heap_file.name file ->
                let _ = f in
                Schema.arity schema
            | _ -> width rest
            | exception Not_found -> width rest)
      in
      width (Env.table_names env)
  | Scan_list { arity; _ } -> arity
  | Generate { arity; _ } | Generate_slice { arity; _ } -> arity
  | Filter { input; _ } -> arity env input
  | Project_cols { cols; _ } -> List.length cols
  | Project_exprs { exprs; _ } -> List.length exprs
  | Sort { input; _ } -> arity env input
  | Match { algo = _; kind; left; right; _ } ->
      Match_op.output_arity kind ~left_arity:(arity env left)
        ~right_arity:(arity env right)
  | Cross { left; right } | Theta_join { left; right; _ } ->
      arity env left + arity env right
  | Aggregate { group_by; aggs; _ } -> List.length group_by + List.length aggs
  | Distinct { input; _ } -> arity env input
  | Division { quotient; _ } -> List.length quotient
  | Limit { input; _ } -> arity env input
  | Choose { alternatives; _ } -> (
      match alternatives with
      | [] -> invalid_arg "Plan.arity: Choose with no alternatives"
      | first :: _ -> arity env first)
  | Exchange { input; _ } | Exchange_merge { input; _ } | Interchange { input; _ }
    ->
      arity env input

let algo_to_string = function Sort_based -> "sort" | Hash_based -> "hash"

let cols_to_string cols =
  "[" ^ String.concat "," (List.map string_of_int cols) ^ "]"

let key_to_string key =
  "["
  ^ String.concat ","
      (List.map
         (fun (c, dir) ->
           string_of_int c
           ^ match dir with Volcano_tuple.Support.Asc -> "" | Desc -> " desc")
         key)
  ^ "]"

let cfg_to_string (cfg : Exchange.config) =
  let partition =
    match cfg.partition with
    | Exchange.Round_robin -> "round-robin"
    | Exchange.Hash_on cols -> "hash" ^ cols_to_string cols
    | Exchange.Range_on (c, _) -> Printf.sprintf "range[%d]" c
    | Exchange.Custom _ -> "custom"
    | Exchange.Broadcast -> "broadcast"
  in
  Printf.sprintf "degree=%d packet=%d flow=%s partition=%s" cfg.degree
    cfg.packet_size
    (match cfg.flow_slack with Some n -> string_of_int n | None -> "off")
    partition

let rec pp_indented ppf indent plan =
  let line fmt =
    Format.fprintf ppf "%s" (String.make (indent * 2) ' ');
    Format.kfprintf (fun ppf -> Format.pp_print_newline ppf ()) ppf fmt
  in
  let child = pp_indented ppf (indent + 1) in
  match plan with
  | Scan_table name -> line "scan %s" name
  | Scan_index { index; _ } -> line "index-scan %s" index
  | Scan_table_slice name -> line "scan-slice %s" name
  | Scan_list { tuples; _ } -> line "scan-list (%d tuples)" (List.length tuples)
  | Generate { count; _ } -> line "generate (%d tuples)" count
  | Generate_slice { count; _ } -> line "generate-slice (%d tuples)" count
  | Filter { pred; mode; input } ->
      line "filter (%s) %a"
        (match mode with `Compiled -> "compiled" | `Interpreted -> "interpreted")
        Expr.pp_pred pred;
      child input
  | Project_cols { cols; input } ->
      line "project %s" (cols_to_string cols);
      child input
  | Project_exprs { exprs; input } ->
      line "project (%d exprs)" (List.length exprs);
      child input
  | Sort { key; input } ->
      line "sort %s" (key_to_string key);
      child input
  | Match { algo; kind; left_key; right_key; left; right } ->
      line "%s-%s on %s=%s" (algo_to_string algo) (Match_op.to_string kind)
        (cols_to_string left_key) (cols_to_string right_key);
      child left;
      child right
  | Cross { left; right } ->
      line "cartesian-product";
      child left;
      child right
  | Theta_join { pred; left; right } ->
      line "nested-loops-join %a" Expr.pp_pred pred;
      child left;
      child right
  | Aggregate { algo; group_by; aggs; input } ->
      line "%s-aggregate by %s (%d aggs)" (algo_to_string algo)
        (cols_to_string group_by) (List.length aggs);
      child input
  | Distinct { algo; on; input } ->
      line "%s-distinct on %s" (algo_to_string algo) (cols_to_string on);
      child input
  | Division { algo; quotient; divisor_attrs; dividend; divisor; _ } ->
      line "%s-division quotient=%s attrs=%s"
        (match algo with `Hash -> "hash" | `Count -> "count" | `Sort -> "sort")
        (cols_to_string quotient)
        (cols_to_string divisor_attrs);
      child dividend;
      child divisor
  | Limit { count; input } ->
      line "limit %d" count;
      child input
  | Choose { alternatives; _ } ->
      line "choose-plan (%d alternatives)" (List.length alternatives);
      List.iter child alternatives
  | Exchange { cfg; input } ->
      line "exchange (%s)" (cfg_to_string cfg);
      child input
  | Exchange_merge { cfg; key; input } ->
      line "exchange-merge %s (%s)" (key_to_string key) (cfg_to_string cfg);
      child input
  | Interchange { cfg; input } ->
      line "interchange (%s)" (cfg_to_string cfg);
      child input

let pp ppf plan = pp_indented ppf 0 plan

let explain env plan =
  Format.asprintf "%a-- output arity: %d@." pp plan (arity env plan)
