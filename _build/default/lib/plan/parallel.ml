module Exchange = Volcano.Exchange

let cfg ?(packet_size = Volcano.Packet.default_capacity)
    ?(flow_slack = Some 4) ?(partition = Exchange.Round_robin) ~degree () =
  Exchange.config ~degree ~packet_size ~flow_slack ~partition ()

let pipeline ?packet_size ?flow_slack input =
  Plan.Exchange { cfg = cfg ?packet_size ?flow_slack ~degree:1 (); input }

let partitioned_scan ~degree ?packet_size ~table () =
  Plan.Exchange
    { cfg = cfg ?packet_size ~degree (); input = Plan.Scan_table_slice table }

let repartition ~degree ?packet_size ~key input =
  Plan.Exchange
    { cfg = cfg ?packet_size ~partition:(Exchange.Hash_on key) ~degree (); input }

let partitioned_match ~degree ?packet_size ~algo ~kind ~left_key ~right_key
    ~left ~right () =
  let match_node =
    Plan.Match
      {
        algo;
        kind;
        left_key;
        right_key;
        left = repartition ~degree ?packet_size ~key:left_key left;
        right = repartition ~degree ?packet_size ~key:right_key right;
      }
  in
  Plan.Exchange { cfg = cfg ?packet_size ~degree (); input = match_node }

let partitioned_aggregate ~degree ?packet_size ~algo ~group_by ~aggs input =
  let agg_node =
    Plan.Aggregate
      {
        algo;
        group_by;
        aggs;
        input = repartition ~degree ?packet_size ~key:group_by input;
      }
  in
  Plan.Exchange { cfg = cfg ?packet_size ~degree (); input = agg_node }

(* Decompose aggregates into a local (per-slice) phase and a global
   combining phase.  The local output lays out group columns first, then
   one column per local aggregate; [global] references those columns.
   Avg splits into Sum + Count and is finished by a projection. *)
let two_phase_decomposition ~group_by ~aggs =
  let g = List.length group_by in
  let module A = Volcano_ops.Aggregate in
  let module E = Volcano_tuple.Expr in
  (* local aggregate list, with Avg expanded *)
  let local =
    List.concat_map
      (function
        | A.Avg e -> [ A.Sum e; A.Count ]
        | other -> [ other ])
      aggs
  in
  (* global phase: combine partials by position *)
  let global =
    List.mapi
      (fun i agg ->
        let column = E.Col (g + i) in
        match agg with
        | A.Count -> A.Sum column
        | A.Sum _ -> A.Sum column
        | A.Min _ -> A.Min column
        | A.Max _ -> A.Max column
        | A.Avg _ -> assert false (* expanded above *))
      local
  in
  (* final projection mapping combined partials back to the requested
     aggregate list (identity unless Avg appears) *)
  let needs_projection = List.exists (function A.Avg _ -> true | _ -> false) aggs in
  let projection =
    if not needs_projection then None
    else begin
      let keep_groups = List.init g (fun i -> E.Col i) in
      let rec outputs i = function
        | [] -> []
        | A.Avg _ :: rest ->
            (* partials at i (sum) and i+1 (count) *)
            E.Div (E.Col (g + i), E.Col (g + i + 1)) :: outputs (i + 2) rest
        | _ :: rest -> E.Col (g + i) :: outputs (i + 1) rest
      in
      Some (keep_groups @ outputs 0 aggs)
    end
  in
  (local, global, projection)

let partitioned_aggregate_two_phase ~degree ?packet_size ~group_by ~aggs input =
  let g = List.length group_by in
  let local_aggs, global_aggs, projection =
    two_phase_decomposition ~group_by ~aggs
  in
  (* Local phase runs once per member of the repartitioning exchange's
     producer group, over that member's slice. *)
  let local =
    Plan.Aggregate
      { algo = Plan.Hash_based; group_by; aggs = local_aggs; input }
  in
  let combined =
    Plan.Aggregate
      {
        algo = Plan.Hash_based;
        group_by = List.init g Fun.id;
        aggs = global_aggs;
        input =
          Plan.Exchange
            {
              cfg =
                cfg ?packet_size
                  ~partition:(Exchange.Hash_on (List.init g Fun.id))
                  ~degree ();
              input = local;
            };
      }
  in
  let finished =
    match projection with
    | None -> combined
    | Some exprs -> Plan.Project_exprs { exprs; input = combined }
  in
  Plan.Exchange { cfg = cfg ?packet_size ~degree (); input = finished }

let parallel_sort ~degree ?packet_size ~key input =
  Plan.Exchange_merge
    { cfg = cfg ?packet_size ~degree (); key; input = Plan.Sort { key; input } }

let broadcast_join ~degree ?packet_size ~kind ~left_key ~right_key ~left ~right
    () =
  let join_node =
    Plan.Match
      {
        algo = Plan.Hash_based;
        kind;
        left_key;
        right_key;
        left;
        right =
          Plan.Exchange
            {
              cfg = cfg ?packet_size ~partition:Exchange.Broadcast ~degree ();
              input = right;
            };
      }
  in
  Plan.Exchange { cfg = cfg ?packet_size ~degree (); input = join_node }
