(** Plan compilation: from algebra trees to iterator trees.

    Exchange nodes need one port key shared by every member of the
    consuming process group.  [compile] pre-assigns a key to each exchange
    node of the plan; the closures capturing that assignment are shared by
    all group members (they all run the same compiled thunk), so members
    agree on keys without further coordination. *)

val compile : Env.t -> Plan.t -> Volcano.Iterator.t
(** Compile for the query root process (a fresh solo group). *)

val run : Env.t -> Plan.t -> Volcano_tuple.Tuple.t list
(** Compile, open, drain, close. *)

val run_count : Env.t -> Plan.t -> int
