lib/wisconsin/wisconsin.mli: Volcano_plan Volcano_tuple
