lib/wisconsin/wisconsin.ml: Array Bytes Char List Printf String Volcano_plan Volcano_storage Volcano_tuple Volcano_util
