module Tuple = Volcano_tuple.Tuple
module Value = Volcano_tuple.Value
module Schema = Volcano_tuple.Schema
module Rng = Volcano_util.Rng
module Zipf = Volcano_util.Zipf

let columns =
  [
    "unique1"; "unique2"; "two"; "four"; "ten"; "twenty"; "one_percent";
    "ten_percent"; "twenty_pct"; "fifty_pct"; "unique3"; "even_one_pct";
    "odd_one_pct"; "stringu1"; "stringu2"; "string4";
  ]

let schema =
  Schema.of_names
    (List.map
       (fun name ->
         let ty =
           match name with
           | "stringu1" | "stringu2" | "string4" -> Value.Tstr
           | _ -> Value.Tint
         in
         (name, ty))
       columns)

let column name =
  let rec search i = function
    | [] -> raise Not_found
    | c :: rest -> if String.equal c name then i else search (i + 1) rest
  in
  search 0 columns

(* The classic 7-letter string image of a number in base 26, padded. *)
let string_image x =
  let buf = Bytes.make 7 'A' in
  let rec fill pos v =
    if pos >= 0 && v > 0 then begin
      Bytes.set buf pos (Char.chr (Char.code 'A' + (v mod 26)));
      fill (pos - 1) (v / 26)
    end
  in
  fill 6 x;
  Bytes.to_string buf

let string4 i =
  match i mod 4 with
  | 0 -> "AAAA"
  | 1 -> "HHHH"
  | 2 -> "OOOO"
  | _ -> "VVVV"

let generator ?(seed = 42L) ~n () =
  let rng = Rng.create seed in
  let permutation = Rng.permutation rng n in
  fun i ->
    if i < 0 || i >= n then invalid_arg "Wisconsin.generator: index out of range";
    let u1 = permutation.(i) in
    [|
      Value.Int u1;
      Value.Int i;
      Value.Int (u1 mod 2);
      Value.Int (u1 mod 4);
      Value.Int (u1 mod 10);
      Value.Int (u1 mod 20);
      Value.Int (u1 mod 100);
      Value.Int (u1 mod 10);
      Value.Int (u1 mod 5);
      Value.Int (u1 mod 2);
      Value.Int u1;
      Value.Int (u1 mod 100 * 2);
      Value.Int ((u1 mod 100 * 2) + 1);
      Value.Str (string_image u1);
      Value.Str (string_image i);
      Value.Str (string4 i);
    |]

let arity = List.length columns

let plan ?seed ~n () =
  Volcano_plan.Plan.Generate { arity; count = n; gen = generator ?seed ~n () }

let plan_slice ?seed ~n () =
  Volcano_plan.Plan.Generate_slice
    { arity; count = n; gen = generator ?seed ~n () }

let load ?seed ?(partitions = 0) ~env ~name ~n () =
  let gen = generator ?seed ~n () in
  let file = Volcano_plan.Env.create_table env ~name ~schema in
  let part_files =
    Array.init partitions (fun p ->
        Volcano_plan.Env.create_table env
          ~name:(Printf.sprintf "%s#%d" name p)
          ~schema)
  in
  for i = 0 to n - 1 do
    let record =
      Bytes.to_string (Volcano_tuple.Serial.encode (gen i))
    in
    let _ = Volcano_storage.Heap_file.insert file record in
    if partitions > 0 then begin
      let _ =
        Volcano_storage.Heap_file.insert part_files.(i mod partitions) record
      in
      ()
    end
  done

let skewed_generator ?(seed = 7L) ~n ~key_space ~theta () =
  let rng = Rng.create seed in
  let zipf = Zipf.create ~n:key_space ~theta in
  let keys = Array.init n (fun _ -> Zipf.draw zipf rng) in
  fun i ->
    if i < 0 || i >= n then invalid_arg "Wisconsin.skewed_generator: out of range";
    Tuple.of_ints [ keys.(i); i ]
