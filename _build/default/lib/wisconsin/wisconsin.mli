(** The Wisconsin benchmark relation — the standard synthetic workload of
    GAMMA-era parallel database studies, used here for examples, tests and
    benchmarks.

    Columns (all derived from a random permutation [unique1] and the
    sequence number [unique2]):

    {v
    0  unique1      random permutation of 0..n-1
    1  unique2      sequence number 0..n-1
    2  two          unique1 mod 2
    3  four         unique1 mod 4
    4  ten          unique1 mod 10
    5  twenty       unique1 mod 20
    6  one_percent  unique1 mod 100
    7  ten_percent  unique1 mod 10 (selectivity 10%)
    8  twenty_pct   unique1 mod 5
    9  fifty_pct    unique1 mod 2
    10 unique3      copy of unique1
    11 even_one_pct (unique1 mod 100) * 2
    12 odd_one_pct  (unique1 mod 100) * 2 + 1
    13 stringu1     string image of unique1
    14 stringu2     string image of unique2
    15 string4      cyclic AAAA/HHHH/OOOO/VVVV
    v} *)

val schema : Volcano_tuple.Schema.t

val column : string -> int
(** Column index by name.  @raise Not_found for unknown names. *)

val generator : ?seed:int64 -> n:int -> unit -> int -> Volcano_tuple.Tuple.t
(** [generator ~n ()] is a deterministic function from row index to tuple
    (the permutation is precomputed). *)

val plan : ?seed:int64 -> n:int -> unit -> Volcano_plan.Plan.t
(** A [Generate] leaf producing the relation. *)

val plan_slice : ?seed:int64 -> n:int -> unit -> Volcano_plan.Plan.t
(** A [Generate_slice] leaf for intra-operator parallel plans. *)

val load :
  ?seed:int64 ->
  ?partitions:int ->
  env:Volcano_plan.Env.t ->
  name:string ->
  n:int ->
  unit ->
  unit
(** Materialize the relation as table [name]; with [partitions = k] also as
    partition files ["name#0" .. "name#k-1"] (round-robin), the stored-data
    layout for partitioned scans. *)

val skewed_generator :
  ?seed:int64 ->
  n:int ->
  key_space:int ->
  theta:float ->
  unit ->
  int ->
  Volcano_tuple.Tuple.t
(** Two-column tuples (zipf-skewed key, row index) for the partition-balance
    ablation. *)
