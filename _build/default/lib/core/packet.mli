(** Exchange packets.

    "The output of next is collected in packets ... which contain 83
    NEXT_RECORD structures" (paper, section 4.1).  "The actual packet size
    is an argument in the state record, and can be set between 1 and 255
    records."  The last packet from a producer carries an end-of-stream
    tag; it may also carry records. *)

type t

val default_capacity : int
(** 83, the paper's standard packet size. *)

val max_capacity : int
(** 255 *)

val create : capacity:int -> producer:int -> t
(** @raise Invalid_argument unless [1 <= capacity <= max_capacity]. *)

val producer : t -> int
val capacity : t -> int
val length : t -> int
val is_full : t -> bool
val is_empty : t -> bool

val add : t -> Volcano_tuple.Tuple.t -> unit
(** @raise Invalid_argument if full. *)

val get : t -> int -> Volcano_tuple.Tuple.t

val tag_end_of_stream : t -> unit
val end_of_stream : t -> bool
