exception Protocol_error of string

type t = {
  open_ : unit -> unit;
  next : unit -> Volcano_tuple.Tuple.t option;
  close : unit -> unit;
}

let make ~open_ ~next ~close = { open_; next; close }

let open_ t = t.open_ ()
let next t = t.next ()
let close t = t.close ()

type protocol_state = Created | Opened | Exhausted | Closed

let checked t =
  let state = ref Created in
  let fail what =
    let name = function
      | Created -> "created"
      | Opened -> "opened"
      | Exhausted -> "exhausted"
      | Closed -> "closed"
    in
    raise (Protocol_error (Printf.sprintf "%s called while %s" what (name !state)))
  in
  {
    open_ =
      (fun () ->
        (match !state with Created -> () | _ -> fail "open");
        t.open_ ();
        state := Opened);
    next =
      (fun () ->
        (match !state with Opened -> () | _ -> fail "next");
        match t.next () with
        | Some _ as result -> result
        | None ->
            state := Exhausted;
            None);
    close =
      (fun () ->
        (match !state with Opened | Exhausted -> () | _ -> fail "close");
        t.close ();
        state := Closed);
  }

let of_array tuples =
  let pos = ref 0 in
  {
    open_ = (fun () -> pos := 0);
    next =
      (fun () ->
        if !pos >= Array.length tuples then None
        else begin
          let tuple = tuples.(!pos) in
          incr pos;
          Some tuple
        end);
    close = (fun () -> ());
  }

let of_list tuples = of_array (Array.of_list tuples)

let generate ~count ~f =
  let pos = ref 0 in
  {
    open_ = (fun () -> pos := 0);
    next =
      (fun () ->
        if !pos >= count then None
        else begin
          let tuple = f !pos in
          incr pos;
          Some tuple
        end);
    close = (fun () -> ());
  }

let empty = of_array [||]

let fold f init t =
  open_ t;
  let rec drive acc =
    match next t with None -> acc | Some tuple -> drive (f acc tuple)
  in
  let result = Fun.protect ~finally:(fun () -> close t) (fun () -> drive init) in
  result

let to_list t = List.rev (fold (fun acc tuple -> tuple :: acc) [] t)
let iter f t = fold (fun () tuple -> f tuple) () t
let consume t = fold (fun n _ -> n + 1) 0 t
