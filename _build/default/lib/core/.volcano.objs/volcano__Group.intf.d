lib/core/group.mli: Port
