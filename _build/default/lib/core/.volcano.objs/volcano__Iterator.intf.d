lib/core/iterator.mli: Volcano_tuple
