lib/core/port.mli: Packet
