lib/core/exchange.mli: Group Iterator Volcano_tuple
