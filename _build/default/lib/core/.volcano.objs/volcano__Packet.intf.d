lib/core/packet.mli: Volcano_tuple
