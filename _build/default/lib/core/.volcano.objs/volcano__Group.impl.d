lib/core/group.ml: Condition Hashtbl Mutex Port Volcano_util
