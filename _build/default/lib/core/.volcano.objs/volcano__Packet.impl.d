lib/core/packet.ml: Array Volcano_tuple
