lib/core/iterator.ml: Array Fun List Printf Volcano_tuple
