lib/core/exchange.ml: Array Atomic Domain Group Iterator List Mutex Packet Port Volcano_tuple Volcano_util
