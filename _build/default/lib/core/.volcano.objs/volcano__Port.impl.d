lib/core/port.ml: Array Atomic Condition Mutex Option Packet Queue Volcano_util
