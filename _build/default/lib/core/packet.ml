type t = {
  tuples : Volcano_tuple.Tuple.t array;
  mutable len : int;
  mutable eos : bool;
  producer : int;
}

let default_capacity = 83
let max_capacity = 255

let create ~capacity ~producer =
  if capacity < 1 || capacity > max_capacity then
    invalid_arg "Packet.create: capacity must be in [1, 255]";
  { tuples = Array.make capacity [||]; len = 0; eos = false; producer }

let producer t = t.producer
let capacity t = Array.length t.tuples
let length t = t.len
let is_full t = t.len = Array.length t.tuples
let is_empty t = t.len = 0

let add t tuple =
  if is_full t then invalid_arg "Packet.add: packet full";
  t.tuples.(t.len) <- tuple;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Packet.get: out of range";
  t.tuples.(i)

let tag_end_of_stream t = t.eos <- true
let end_of_stream t = t.eos
