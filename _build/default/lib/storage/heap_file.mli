(** Heap files: unordered record files stored as a chain of slotted pages on
    a device, reached through the buffer pool.  Every record has a RID;
    scans return records in page order.  Files on virtual devices hold
    intermediate results (sort runs, hash partitions) and behave exactly
    like disk files, as the paper requires (section 3). *)

type t

val create : buffer:Bufpool.t -> device:Device.t -> name:string -> t
(** Create an empty file and register it in the device's VTOC.
    @raise Invalid_argument if the name is taken. *)

val open_existing : buffer:Bufpool.t -> device:Device.t -> name:string -> t
(** @raise Not_found if no such file. *)

val name : t -> string
val device : t -> Device.t

val insert : t -> string -> Rid.t
(** Append a record, allocating pages as needed. *)

val get : t -> Rid.t -> string option
(** Fetch by RID ([None] if deleted or never existed). *)

val delete : t -> Rid.t -> bool

val update : t -> Rid.t -> string -> bool
(** Replace the record in place, keeping its RID.  Returns [false] — with
    the original record untouched — if the RID is dead or the new record
    does not fit in the page (callers then delete + reinsert). *)

val page_chain : t -> int list
(** The file's pages in scan order (used by read-ahead). *)

val record_count : t -> int
val page_count : t -> int

type cursor

val scan : t -> cursor
val next : cursor -> (Rid.t * string) option
(** Records in page order; [None] at end of file. *)

val close_cursor : cursor -> unit
(** Release the cursor's pinned page, if any.  Safe to call twice. *)

val iter : t -> (Rid.t -> string -> unit) -> unit

val drop : t -> unit
(** Free every page of the file and remove its VTOC entry.  Resident pages
    are purged from the pool without write-back on virtual devices. *)

val sync_vtoc : t -> unit
(** Push the in-memory file header (page chain, counts) into the VTOC. *)
