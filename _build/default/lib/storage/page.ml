let header_size = 16
let slot_size = 4

let n_slots page = Bytes.get_uint16_le page 0
let set_n_slots page n = Bytes.set_uint16_le page 0 n
let free_off page = Bytes.get_uint16_le page 2
let set_free_off page off = Bytes.set_uint16_le page 2 off
let next_page page = Int32.to_int (Bytes.get_int32_le page 4)
let set_next_page page p = Bytes.set_int32_le page 4 (Int32.of_int p)
let aux page = Int32.to_int (Bytes.get_int32_le page 8)
let set_aux page p = Bytes.set_int32_le page 8 (Int32.of_int p)
let kind page = Int32.to_int (Bytes.get_int32_le page 12)
let set_kind page k = Bytes.set_int32_le page 12 (Int32.of_int k)

let init page ~kind =
  Bytes.fill page 0 (Bytes.length page) '\000';
  set_n_slots page 0;
  set_free_off page header_size;
  set_next_page page (-1);
  set_aux page (-1);
  set_kind page kind

let slot_pos page i = Bytes.length page - (slot_size * (i + 1))

let slot page i =
  let pos = slot_pos page i in
  (Bytes.get_uint16_le page pos, Bytes.get_uint16_le page (pos + 2))

let set_slot page i ~off ~len =
  let pos = slot_pos page i in
  Bytes.set_uint16_le page pos off;
  Bytes.set_uint16_le page (pos + 2) len

let dir_start page = Bytes.length page - (slot_size * n_slots page)

let free_space page =
  let v = dir_start page - free_off page in
  if v < 0 then 0 else v

let dead_space page =
  let total = ref 0 in
  for i = 0 to n_slots page - 1 do
    let off, len = slot page i in
    if len = 0 && off > 0 then total := !total + off
    (* A dead slot stores the reclaimable length in its offset field. *)
  done;
  !total

let total_free_space page = free_space page + dead_space page

let read page i =
  if i < 0 || i >= n_slots page then None
  else
    let off, len = slot page i in
    if len = 0 then None else Some (Bytes.sub_string page off len)

let live_records page =
  let rec collect i acc =
    if i < 0 then acc
    else
      match read page i with
      | None -> collect (i - 1) acc
      | Some r -> collect (i - 1) ((i, r) :: acc)
  in
  collect (n_slots page - 1) []

let delete page i =
  if i < 0 || i >= n_slots page then false
  else
    let _, len = slot page i in
    if len = 0 then false
    else begin
      (* Remember the reclaimable length in the offset field. *)
      set_slot page i ~off:len ~len:0;
      true
    end

let compact page =
  let records = live_records page in
  let cursor = ref header_size in
  let staged =
    List.map
      (fun (i, r) ->
        let off = !cursor in
        cursor := !cursor + String.length r;
        (i, r, off))
      records
  in
  List.iter
    (fun (i, r, off) ->
      Bytes.blit_string r 0 page off (String.length r);
      set_slot page i ~off ~len:(String.length r))
    staged;
  (* Dead slots no longer hold reclaimable space. *)
  for i = 0 to n_slots page - 1 do
    let _, len = slot page i in
    if len = 0 then set_slot page i ~off:0 ~len:0
  done;
  set_free_off page !cursor

let replace page slot_no record =
  let len = String.length record in
  if len = 0 || len > 0xffff then false
  else
    match read page slot_no with
    | None -> false
    | Some old ->
        let old_off, old_len = slot page slot_no in
        (* Release the old space for accounting... *)
        set_slot page slot_no ~off:old_len ~len:0;
        if free_space page < len && total_free_space page >= len then
          (* ...compaction drops the old bytes, but success is now assured. *)
          compact page;
        if free_space page >= len then begin
          let off = free_off page in
          Bytes.blit_string record 0 page off len;
          set_free_off page (off + len);
          set_slot page slot_no ~off ~len;
          true
        end
        else begin
          (* No compaction ran (total free was insufficient), so the old
             bytes are untouched: restore the slot. *)
          ignore old;
          set_slot page slot_no ~off:old_off ~len:old_len;
          false
        end

let find_dead_slot page =
  let n = n_slots page in
  let rec search i = if i >= n then None else
    let _, len = slot page i in
    if len = 0 then Some i else search (i + 1)
  in
  search 0

let insert page record =
  let len = String.length record in
  if len = 0 || len > 0xffff then None
  else begin
    let reuse = find_dead_slot page in
    let slot_cost = match reuse with Some _ -> 0 | None -> slot_size in
    let need = len + slot_cost in
    if free_space page < need && total_free_space page >= need then compact page;
    if free_space page < need then None
    else begin
      let off = free_off page in
      Bytes.blit_string record 0 page off len;
      set_free_off page (off + len);
      match reuse with
      | Some i ->
          set_slot page i ~off ~len;
          Some i
      | None ->
          let i = n_slots page in
          set_n_slots page (i + 1);
          set_slot page i ~off ~len;
          Some i
    end
  end
