type t = {
  bits : Bytes.t;
  n : int;
  mutable hint : int; (* first index that might be free *)
  mutable used : int;
}

let create n =
  assert (n >= 0);
  { bits = Bytes.make ((n + 7) / 8) '\000'; n; hint = 0; used = 0 }

let size t = t.n

let check t i = if i < 0 || i >= t.n then invalid_arg "Bitmap: index out of range"

let is_set t i =
  check t i;
  Char.code (Bytes.get t.bits (i / 8)) land (1 lsl (i mod 8)) <> 0

let set t i =
  check t i;
  if not (is_set t i) then begin
    let b = Char.code (Bytes.get t.bits (i / 8)) in
    Bytes.set t.bits (i / 8) (Char.chr (b lor (1 lsl (i mod 8))));
    t.used <- t.used + 1
  end

let clear t i =
  check t i;
  if is_set t i then begin
    let b = Char.code (Bytes.get t.bits (i / 8)) in
    Bytes.set t.bits (i / 8) (Char.chr (b land lnot (1 lsl (i mod 8)) land 0xff));
    t.used <- t.used - 1;
    if i < t.hint then t.hint <- i
  end

let find_free t =
  let rec search i =
    if i >= t.n then None else if not (is_set t i) then Some i else search (i + 1)
  in
  search t.hint

let allocate t =
  match find_free t with
  | None -> None
  | Some i ->
      set t i;
      t.hint <- i + 1;
      Some i

let used t = t.used

let to_bytes t = Bytes.copy t.bits

let of_bytes bytes ~n =
  let t = create n in
  Bytes.blit bytes 0 t.bits 0 (min (Bytes.length bytes) (Bytes.length t.bits));
  let used = ref 0 in
  for i = 0 to n - 1 do
    if is_set t i then incr used
  done;
  t.used <- !used;
  t
