lib/storage/bitmap.mli:
