lib/storage/daemon.ml: Atomic Bufpool Condition Device Domain List Mutex Queue
