lib/storage/device.mli: Vtoc
