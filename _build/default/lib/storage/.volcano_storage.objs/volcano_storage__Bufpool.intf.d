lib/storage/bufpool.mli: Device
