lib/storage/bitmap.ml: Bytes Char
