lib/storage/heap_file.mli: Bufpool Device Rid
