lib/storage/rid.ml: Format Int
