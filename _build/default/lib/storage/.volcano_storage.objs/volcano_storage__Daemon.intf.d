lib/storage/daemon.mli: Bufpool Device
