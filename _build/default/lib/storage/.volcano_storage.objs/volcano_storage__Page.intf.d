lib/storage/page.mli:
