lib/storage/device.ml: Atomic Bitmap Buffer Bytes Fun Hashtbl Int32 Mutex Printf Unix Vtoc
