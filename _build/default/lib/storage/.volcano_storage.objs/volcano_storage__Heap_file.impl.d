lib/storage/heap_file.ml: Bufpool Device Fun List Mutex Page Printf Rid String Vtoc
