lib/storage/vtoc.mli:
