lib/storage/bufpool.ml: Array Atomic Bytes Device Domain Fun Hashtbl Mutex
