lib/storage/vtoc.ml: Buffer Bytes Fun Hashtbl Int32 List Mutex String
