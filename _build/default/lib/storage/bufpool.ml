type mode = Two_level | Single_global

exception Buffer_exhausted

type frame = {
  index : int;
  mutable device : Device.t option;
  mutable page : int;
  data : Bytes.t;
  mutable fixes : int;
  mutable dirty : bool;
  lock : Mutex.t; (* descriptor lock: held during I/O on this frame *)
  mutable lru_prev : int; (* -1 = none; links valid only when fixes = 0 *)
  mutable lru_next : int;
  mutable on_lru : bool;
}

type t = {
  pool_lock : Mutex.t;
  frames : frame array;
  table : (int * int, int) Hashtbl.t; (* (device id, page) -> frame index *)
  mutable lru_head : int; (* least recently used *)
  mutable lru_tail : int; (* most recently used *)
  md : mode;
  n_hits : int Atomic.t;
  n_misses : int Atomic.t;
  n_evictions : int Atomic.t;
  n_writebacks : int Atomic.t;
  n_restarts : int Atomic.t;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;
  restarts : int;
}

let create ?(mode = Two_level) ~frames ~page_size () =
  assert (frames > 0);
  let make_frame index =
    {
      index;
      device = None;
      page = -1;
      data = Bytes.make page_size '\000';
      fixes = 0;
      dirty = false;
      lock = Mutex.create ();
      lru_prev = index - 1;
      lru_next = (if index = frames - 1 then -1 else index + 1);
      on_lru = true;
    }
  in
  {
    pool_lock = Mutex.create ();
    frames = Array.init frames make_frame;
    table = Hashtbl.create (frames * 2);
    lru_head = 0;
    lru_tail = frames - 1;
    md = mode;
    n_hits = Atomic.make 0;
    n_misses = Atomic.make 0;
    n_evictions = Atomic.make 0;
    n_writebacks = Atomic.make 0;
    n_restarts = Atomic.make 0;
  }

(* LRU chain manipulation; caller holds the pool lock. *)

let lru_remove t f =
  if f.on_lru then begin
    if f.lru_prev >= 0 then t.frames.(f.lru_prev).lru_next <- f.lru_next
    else t.lru_head <- f.lru_next;
    if f.lru_next >= 0 then t.frames.(f.lru_next).lru_prev <- f.lru_prev
    else t.lru_tail <- f.lru_prev;
    f.lru_prev <- -1;
    f.lru_next <- -1;
    f.on_lru <- false
  end

let lru_append t f =
  assert (not f.on_lru);
  f.lru_prev <- t.lru_tail;
  f.lru_next <- -1;
  if t.lru_tail >= 0 then t.frames.(t.lru_tail).lru_next <- f.index
  else t.lru_head <- f.index;
  t.lru_tail <- f.index;
  f.on_lru <- true

let key dev page = (Device.id dev, page)

(* Pick the least recently used unfixed frame whose descriptor lock is free.
   Caller holds the pool lock; on success the victim's descriptor lock is
   held and the frame is off the LRU chain, but it REMAINS in the hash
   table: a concurrent fix of the old page must find the descriptor and
   fail its test-and-lock (then restart) rather than re-read a page whose
   write-back is still in flight. *)
let claim_victim t =
  let rec walk idx =
    if idx < 0 then None
    else
      let f = t.frames.(idx) in
      if Mutex.try_lock f.lock then begin
        lru_remove t f;
        Some f
      end
      else walk f.lru_next
  in
  walk t.lru_head

let write_back t f =
  match f.device with
  | Some dev when f.dirty ->
      Device.write dev ~page:f.page f.data;
      f.dirty <- false;
      Atomic.incr t.n_writebacks
  | _ -> ()

(* The core fix path.  [load] fills the frame after a miss. *)
let rec fix_loop t dev page ~load ~attempts =
  Mutex.lock t.pool_lock;
  match Hashtbl.find_opt t.table (key dev page) with
  | Some idx ->
      let f = t.frames.(idx) in
      if Mutex.try_lock f.lock then begin
        (* Atomic test-and-lock succeeded: the descriptor is quiescent. *)
        Mutex.unlock f.lock;
        if f.fixes = 0 then lru_remove t f;
        f.fixes <- f.fixes + 1;
        Atomic.incr t.n_hits;
        Mutex.unlock t.pool_lock;
        f
      end
      else begin
        (* Someone is reading or replacing this cluster: release, delay,
           restart — including the hash-table lookup (section 4.5). *)
        Atomic.incr t.n_restarts;
        Mutex.unlock t.pool_lock;
        Domain.cpu_relax ();
        fix_loop t dev page ~load ~attempts
      end
  | None -> (
      match claim_victim t with
      | None ->
          Mutex.unlock t.pool_lock;
          if attempts > 10_000 then raise Buffer_exhausted;
          Domain.cpu_relax ();
          fix_loop t dev page ~load ~attempts:(attempts + 1)
      | Some f ->
          Mutex.unlock t.pool_lock;
          (* Clean the victim under its descriptor lock, with no pool lock
             held and its old mapping still visible. *)
          (match f.device with
          | Some odev when f.dirty ->
              Device.write odev ~page:f.page f.data;
              f.dirty <- false;
              Atomic.incr t.n_writebacks
          | _ -> ());
          Mutex.lock t.pool_lock;
          if Hashtbl.mem t.table (key dev page) then begin
            (* Someone else loaded the wanted page while we were cleaning:
               return the (now clean) victim and restart from the lookup. *)
            lru_append t f;
            Mutex.unlock t.pool_lock;
            Mutex.unlock f.lock;
            Domain.cpu_relax ();
            fix_loop t dev page ~load ~attempts
          end
          else begin
            (match f.device with
            | Some odev ->
                Hashtbl.remove t.table (key odev f.page);
                Atomic.incr t.n_evictions
            | None -> ());
            Hashtbl.replace t.table (key dev page) f.index;
            f.device <- Some dev;
            f.page <- page;
            f.fixes <- 1;
            Atomic.incr t.n_misses;
            Mutex.unlock t.pool_lock;
            (* I/O happens under the descriptor lock only. *)
            f.dirty <- false;
            load f;
            Mutex.unlock f.lock;
            f
          end)

let fix_general t dev page ~load =
  match t.md with
  | Two_level -> fix_loop t dev page ~load ~attempts:0
  | Single_global ->
      Mutex.lock t.pool_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.pool_lock)
        (fun () ->
          match Hashtbl.find_opt t.table (key dev page) with
          | Some idx ->
              let f = t.frames.(idx) in
              if f.fixes = 0 then lru_remove t f;
              f.fixes <- f.fixes + 1;
              Atomic.incr t.n_hits;
              f
          | None -> (
              let rec victim idx =
                if idx < 0 then raise Buffer_exhausted
                else
                  let f = t.frames.(idx) in
                  if f.fixes = 0 then f else victim f.lru_next
              in
              let f = victim t.lru_head in
              lru_remove t f;
              (match f.device with
              | Some odev ->
                  Hashtbl.remove t.table (key odev f.page);
                  Atomic.incr t.n_evictions;
                  if f.dirty then begin
                    Device.write odev ~page:f.page f.data;
                    Atomic.incr t.n_writebacks
                  end
              | None -> ());
              Hashtbl.replace t.table (key dev page) f.index;
              f.device <- Some dev;
              f.page <- page;
              f.fixes <- 1;
              f.dirty <- false;
              Atomic.incr t.n_misses;
              load f;
              f))

let fix t dev page =
  fix_general t dev page ~load:(fun f -> Device.read dev ~page f.data)

let fix_new t dev page =
  let f =
    fix_general t dev page ~load:(fun f ->
        Bytes.fill f.data 0 (Bytes.length f.data) '\000')
  in
  f.dirty <- true;
  f

let unfix t f =
  Mutex.lock t.pool_lock;
  if f.fixes <= 0 then begin
    Mutex.unlock t.pool_lock;
    invalid_arg "Bufpool.unfix: frame is not fixed"
  end;
  f.fixes <- f.fixes - 1;
  if f.fixes = 0 then lru_append t f;
  Mutex.unlock t.pool_lock

let mark_dirty f = f.dirty <- true
let bytes f = f.data

let frame_device f =
  match f.device with
  | Some d -> d
  | None -> invalid_arg "Bufpool.frame_device: empty frame"

let frame_page f = f.page
let fix_count f = f.fixes

let contains t dev page =
  Mutex.lock t.pool_lock;
  let resident = Hashtbl.mem t.table (key dev page) in
  Mutex.unlock t.pool_lock;
  resident

let flush_page t dev page =
  Mutex.lock t.pool_lock;
  let frame =
    match Hashtbl.find_opt t.table (key dev page) with
    | Some idx ->
        let f = t.frames.(idx) in
        if f.dirty && Mutex.try_lock f.lock then Some f else None
    | None -> None
  in
  Mutex.unlock t.pool_lock;
  match frame with
  | Some f ->
      write_back t f;
      Mutex.unlock f.lock;
      true
  | None -> false

let prefetch t dev page =
  let f = fix t dev page in
  unfix t f

let flush_all t =
  Array.iter
    (fun f ->
      Mutex.lock f.lock;
      write_back t f;
      Mutex.unlock f.lock)
    t.frames

let purge_device t dev =
  Mutex.lock t.pool_lock;
  Array.iter
    (fun f ->
      match f.device with
      | Some d when Device.id d = Device.id dev ->
          if f.fixes > 0 then begin
            Mutex.unlock t.pool_lock;
            invalid_arg "Bufpool.purge_device: page still fixed"
          end;
          Hashtbl.remove t.table (key d f.page);
          f.device <- None;
          f.page <- -1;
          f.dirty <- false
      | _ -> ())
    t.frames;
  Mutex.unlock t.pool_lock

let stats t =
  {
    hits = Atomic.get t.n_hits;
    misses = Atomic.get t.n_misses;
    evictions = Atomic.get t.n_evictions;
    writebacks = Atomic.get t.n_writebacks;
    restarts = Atomic.get t.n_restarts;
  }

let frames_total t = Array.length t.frames
let mode t = t.md
