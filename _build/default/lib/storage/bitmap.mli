(** Free-space bitmaps for page allocation within a device.  The paper
    protects the map with a dedicated "map busy" lock (section 4.5); the
    device module holds that lock around calls into this module. *)

type t

val create : int -> t
(** [create n] is a map over [n] pages, all free. *)

val size : t -> int
val set : t -> int -> unit
val clear : t -> int -> unit
val is_set : t -> int -> bool

val find_free : t -> int option
(** Lowest clear bit, if any.  Does not modify the map. *)

val allocate : t -> int option
(** Find and set the lowest clear bit. *)

val used : t -> int

val to_bytes : t -> bytes
val of_bytes : bytes -> n:int -> t
