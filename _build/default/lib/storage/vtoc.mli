(** Volume table of contents: the per-device catalog mapping file names to
    their page chains.  The paper protects the VTOC with an exclusive lock
    held "while an entry is inserted or deleted or while the VTOC is scanned"
    (section 4.5); this module does the same. *)

type entry = {
  name : string;
  mutable first_page : int;
  mutable last_page : int;
  mutable pages : int;
  mutable records : int;
}

type t

val create : unit -> t

val add : t -> entry -> unit
(** @raise Invalid_argument if an entry with the same name exists. *)

val find : t -> string -> entry option
val remove : t -> string -> bool
val names : t -> string list
val entry_count : t -> int

val encode : t -> bytes
(** Serialize for the device superblock. *)

val decode : bytes -> pos:int -> t * int
(** [decode buf ~pos] returns the table and the bytes consumed. *)
