(** Slotted pages.

    Layout of a page of [size] bytes:

    {v
    0..1    number of slots (including dead slots)
    2..3    free-space offset (records grow upward from byte 16)
    4..7    next-page link (-1 if none)
    8..11   auxiliary link (module-specific)
    12..15  page kind / flags (module-specific)
    16..    record area, growing up
    ...     slot directory, growing down from the end;
            slot i occupies the 4 bytes at size - 4*(i+1):
            record offset (2 bytes) and length (2 bytes);
            length 0 marks a dead slot
    v}

    All functions operate on a caller-supplied [Bytes.t] (a buffer-pool
    frame); the module holds no state. *)

val header_size : int
val slot_size : int

val init : bytes -> kind:int -> unit
(** Format a fresh page in place. *)

val n_slots : bytes -> int
val kind : bytes -> int
val set_kind : bytes -> int -> unit
val next_page : bytes -> int
val set_next_page : bytes -> int -> unit
val aux : bytes -> int
val set_aux : bytes -> int -> unit

val free_space : bytes -> int
(** Contiguous free bytes available for one more record plus its slot. *)

val total_free_space : bytes -> int
(** Free bytes counting dead-record space reclaimable by {!compact}. *)

val insert : bytes -> string -> int option
(** [insert page record] places [record] and returns its slot, compacting
    the page first if fragmentation demands it; [None] if it cannot fit. *)

val read : bytes -> int -> string option
(** [read page slot] is the record at [slot], or [None] if the slot is dead
    or out of range. *)

val delete : bytes -> int -> bool
(** Mark a slot dead.  Returns [false] if it was already dead or invalid. *)

val replace : bytes -> int -> string -> bool
(** [replace page slot record] swaps the record stored at a live slot,
    keeping the slot number (and therefore the RID) stable; compacts if
    needed.  Returns [false] — leaving the original intact — when the slot
    is dead or the new record cannot fit. *)

val live_records : bytes -> (int * string) list
(** All live [(slot, record)] pairs in slot order. *)

val compact : bytes -> unit
(** Squeeze out dead-record space.  Slot numbers are preserved. *)
