type entry = {
  name : string;
  mutable first_page : int;
  mutable last_page : int;
  mutable pages : int;
  mutable records : int;
}

type t = {
  lock : Mutex.t; (* the paper's exclusive VTOC lock *)
  entries : (string, entry) Hashtbl.t;
}

let create () = { lock = Mutex.create (); entries = Hashtbl.create 16 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let add t entry =
  locked t (fun () ->
      if Hashtbl.mem t.entries entry.name then
        invalid_arg ("Vtoc.add: duplicate file " ^ entry.name);
      Hashtbl.add t.entries entry.name entry)

let find t name = locked t (fun () -> Hashtbl.find_opt t.entries name)

let remove t name =
  locked t (fun () ->
      let existed = Hashtbl.mem t.entries name in
      Hashtbl.remove t.entries name;
      existed)

let names t =
  locked t (fun () -> Hashtbl.fold (fun name _ acc -> name :: acc) t.entries [])

let entry_count t = locked t (fun () -> Hashtbl.length t.entries)

let encode t =
  locked t (fun () ->
      let buffer = Buffer.create 256 in
      Buffer.add_uint16_le buffer (Hashtbl.length t.entries);
      Hashtbl.iter
        (fun _ e ->
          Buffer.add_uint16_le buffer (String.length e.name);
          Buffer.add_string buffer e.name;
          List.iter
            (fun v -> Buffer.add_int32_le buffer (Int32.of_int v))
            [ e.first_page; e.last_page; e.pages; e.records ])
        t.entries;
      Buffer.to_bytes buffer)

let decode buf ~pos =
  let t = create () in
  let count = Bytes.get_uint16_le buf pos in
  let cursor = ref (pos + 2) in
  for _ = 1 to count do
    let name_len = Bytes.get_uint16_le buf !cursor in
    let name = Bytes.sub_string buf (!cursor + 2) name_len in
    cursor := !cursor + 2 + name_len;
    let int32_at off = Int32.to_int (Bytes.get_int32_le buf (!cursor + (off * 4))) in
    let entry =
      {
        name;
        first_page = int32_at 0;
        last_page = int32_at 1;
        pages = int32_at 2;
        records = int32_at 3;
      }
    in
    cursor := !cursor + 16;
    Hashtbl.add t.entries name entry
  done;
  (t, !cursor - pos)
