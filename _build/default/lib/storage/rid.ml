type t = { device : int; page : int; slot : int }

let make ~device ~page ~slot = { device; page; slot }

let compare a b =
  let c = Int.compare a.device b.device in
  if c <> 0 then c
  else
    let c = Int.compare a.page b.page in
    if c <> 0 then c else Int.compare a.slot b.slot

let equal a b = compare a b = 0
let pp ppf t = Format.fprintf ppf "%d.%d.%d" t.device t.page t.slot
let to_string t = Format.asprintf "%a" pp t
