(** Record identifiers.  A RID names a record by device, page, and slot;
    intermediate results on virtual devices get RIDs exactly like disk
    records (paper, section 3). *)

type t = { device : int; page : int; slot : int }

val make : device:int -> page:int -> slot:int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
