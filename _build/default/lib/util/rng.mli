(** Deterministic pseudo-random number generation (splitmix64).

    All workload generation in the repository is seeded so that experiments
    and property tests are reproducible.  Each domain can [split] its own
    stream so that parallel runs stay deterministic. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. *)

val copy : t -> t

val split : t -> t
(** [split t] derives an independent stream, advancing [t]. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a random permutation of [0 .. n-1]. *)
