(** Streaming descriptive statistics (Welford's algorithm), used by the
    benchmark harness and the partition-balance ablation. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
val stddev : t -> float
val min : t -> float
val max : t -> float

val coefficient_of_variation : t -> float
(** stddev / mean; 0 for an empty or constant series.  Used as the imbalance
    metric in the partitioning ablation. *)

val of_list : float list -> t
val pp : Format.formatter -> t -> unit
