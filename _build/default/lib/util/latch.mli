(** Countdown latches and cyclic barriers.

    The exchange operator's process groups synchronize twice around port
    creation (paper, section 4.2): the group master creates the port, then
    the whole group proceeds.  A countdown latch expresses "wait until the
    master is done"; a barrier expresses the double synchronization. *)

type t
(** A one-shot countdown latch. *)

val create : int -> t
(** [create n] is a latch that opens after [n] calls to {!count_down}. *)

val count_down : t -> unit
(** Decrement the latch; opens it (waking all waiters) when it reaches 0. *)

val await : t -> unit
(** Block until the latch has opened.  Returns immediately afterwards. *)

val is_open : t -> bool

module Barrier : sig
  type t
  (** A cyclic barrier for a fixed-size group. *)

  val create : int -> t

  val await : t -> unit
  (** Block until all [n] members have arrived, then release everyone.  The
      barrier resets and can be reused for the next synchronization round. *)
end
