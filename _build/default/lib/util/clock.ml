(* Wall time.  All measured effects are in the millisecond-to-second range,
   far above gettimeofday resolution. *)
let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let result = f () in
  let t1 = now () in
  (result, t1 -. t0)

let time_unit f = snd (time f)
