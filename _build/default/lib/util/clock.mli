(** Wall-clock timing helpers for the benchmark harness.  The paper used the
    Sequent's hardware microsecond clock; we use the OS monotonic clock. *)

val now : unit -> float
(** Seconds since an arbitrary epoch, monotonic. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and also returns the elapsed wall time in seconds. *)

val time_unit : (unit -> unit) -> float
