type t = {
  n : int;
  cumulative : float array; (* cumulative.(i) = P(X <= i) *)
}

let create ~n ~theta =
  assert (n > 0);
  assert (theta >= 0.);
  let weights = Array.init n (fun i -> 1.0 /. ((float_of_int (i + 1)) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) /. total);
    cumulative.(i) <- !acc
  done;
  cumulative.(n - 1) <- 1.0;
  { n; cumulative }

(* Binary search for the first index whose cumulative weight covers [u]. *)
let draw t rng =
  let u = Rng.float rng 1.0 in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cumulative.(mid) < u then search (mid + 1) hi else search lo mid
  in
  search 0 (t.n - 1)

let n t = t.n
