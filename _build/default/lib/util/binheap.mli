(** Binary min-heaps, parameterized by an explicit comparison — used by the
    k-way merge of the external sort, the merge iterator of merge networks,
    and the event queue of the multiprocessor simulator. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val peek : 'a t -> 'a option

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val to_sorted_list : 'a t -> 'a list
(** Drain the heap in ascending order (destructive). *)
