lib/util/sema.mli:
