lib/util/clock.mli:
