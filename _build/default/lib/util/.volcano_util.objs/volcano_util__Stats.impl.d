lib/util/stats.ml: Format List
