lib/util/rng.mli:
