lib/util/latch.ml: Condition Mutex
