lib/util/latch.mli:
