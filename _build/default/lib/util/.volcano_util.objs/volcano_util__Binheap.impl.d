lib/util/binheap.ml: Array List
