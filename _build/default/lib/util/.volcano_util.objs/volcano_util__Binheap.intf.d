lib/util/binheap.mli:
