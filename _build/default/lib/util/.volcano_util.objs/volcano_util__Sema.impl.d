lib/util/sema.ml: Condition Mutex
