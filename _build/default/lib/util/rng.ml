type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64 step: Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators" (OOPSLA 2014). *)
let next_raw t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 = next_raw

let split t = create (next_raw t)

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's 63-bit int as a positive. *)
  let mask = Int64.to_int (Int64.shift_right_logical (next_raw t) 2) in
  mask mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_raw t) 11) in
  bound *. (x /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_raw t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
