(** Zipf-distributed sampling, used to generate skewed partitioning keys for
    the load-balance ablation (DESIGN.md, A3). *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a sampler over [\[0, n)] with skew parameter
    [theta].  [theta = 0.] degenerates to the uniform distribution; common
    skewed settings use [theta] near 1. *)

val draw : t -> Rng.t -> int
(** Sample a value in [\[0, n)]. *)

val n : t -> int
