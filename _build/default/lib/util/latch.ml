type t = {
  mutex : Mutex.t;
  opened : Condition.t;
  mutable remaining : int;
}

let create n =
  assert (n >= 0);
  { mutex = Mutex.create (); opened = Condition.create (); remaining = n }

let count_down t =
  Mutex.lock t.mutex;
  if t.remaining > 0 then begin
    t.remaining <- t.remaining - 1;
    if t.remaining = 0 then Condition.broadcast t.opened
  end;
  Mutex.unlock t.mutex

let await t =
  Mutex.lock t.mutex;
  while t.remaining > 0 do
    Condition.wait t.opened t.mutex
  done;
  Mutex.unlock t.mutex

let is_open t =
  Mutex.lock t.mutex;
  let v = t.remaining = 0 in
  Mutex.unlock t.mutex;
  v

module Barrier = struct
  type t = {
    mutex : Mutex.t;
    released : Condition.t;
    size : int;
    mutable arrived : int;
    mutable generation : int;
  }

  let create n =
    assert (n > 0);
    {
      mutex = Mutex.create ();
      released = Condition.create ();
      size = n;
      arrived = 0;
      generation = 0;
    }

  let await t =
    Mutex.lock t.mutex;
    let gen = t.generation in
    t.arrived <- t.arrived + 1;
    if t.arrived = t.size then begin
      (* Last arrival releases the group and resets for the next round. *)
      t.arrived <- 0;
      t.generation <- t.generation + 1;
      Condition.broadcast t.released
    end
    else
      while t.generation = gen do
        Condition.wait t.released t.mutex
      done;
    Mutex.unlock t.mutex
end
