(* Intra-operator parallel join, GAMMA style: both inputs hash-partitioned
   across a group of join processes, results streamed to the consumer.  The
   join algorithm itself is the unchanged single-process hash match.

   Run with: dune exec examples/parallel_join.exe *)

module Plan = Volcano_plan.Plan
module Session = Volcano_plan.Session
module Parallel = Volcano_plan.Parallel
module W = Volcano_wisconsin.Wisconsin
module Tuple = Volcano_tuple.Tuple
module Clock = Volcano_util.Clock

let () =
  Session.with_session ~frames:1024 ~page_size:4096 @@ fun s ->
  let env = Session.env s in
  let n_left = 40_000 and n_right = 10_000 in
  let left = W.plan ~seed:1L ~n:n_left () in
  let right = W.plan ~seed:2L ~n:n_right () in
  let left_slice = W.plan_slice ~seed:1L ~n:n_left () in
  let right_slice = W.plan_slice ~seed:2L ~n:n_right () in
  let key = [ W.column "unique1" ] in

  (* join LEFT and RIGHT on unique1; right is smaller, so it builds. *)
  let serial =
    Plan.Match
      {
        algo = Plan.Hash_based;
        kind = Volcano_ops.Match_op.Join;
        left_key = key;
        right_key = key;
        left;
        right;
      }
  in
  let parallel degree =
    Parallel.partitioned_match ~degree ~algo:Plan.Hash_based
      ~kind:Volcano_ops.Match_op.Join ~left_key:key ~right_key:key
      ~left:left_slice ~right:right_slice ()
  in

  print_string "-- serial hash join --\n";
  print_string (Plan.explain env serial);
  let serial_count, serial_time =
    Clock.time (fun () -> Session.exec_count s (`Plan serial))
  in
  Printf.printf "result: %d rows in %.3f s\n\n" serial_count serial_time;

  print_string "-- partitioned parallel join (degree 4) --\n";
  print_string (Plan.explain env (parallel 4));
  List.iter
    (fun degree ->
      let count, time = Clock.time (fun () -> Session.exec_count s (`Plan (parallel degree))) in
      assert (count = serial_count);
      Printf.printf "degree %d: %d rows in %.3f s\n" degree count time)
    [ 1; 2; 4 ];
  print_string
    "\n(wall-clock speedup needs multiple cores; on this machine the point\n\
    \ is that the partitioned plan returns identical results with the same\n\
    \ operator code — see bench/main.exe a7 for simulated 12-CPU speedups)\n"
