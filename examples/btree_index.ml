(* Secondary indexes and dynamic query evaluation plans.

   Build a B+-tree index over a stored Wisconsin table and answer a range
   query two ways: full scan + filter, or index range scan + fetch.  Then
   let a choose-plan operator (Graefe & Ward 1989, reference 1 of the
   paper) pick between the two at open time based on the predicate's
   selectivity — the decision the optimizer could not make at compile time.

   Run with: dune exec examples/btree_index.exe *)

module Env = Volcano_plan.Env
module Iterator = Volcano.Iterator
module Btree = Volcano_btree.Btree
module Scan = Volcano_ops.Scan
module Filter = Volcano_ops.Filter
module Choose = Volcano_ops.Choose_plan
module Tuple = Volcano_tuple.Tuple
module W = Volcano_wisconsin.Wisconsin
module Clock = Volcano_util.Clock

let n = 50_000
let key_of tuple = Printf.sprintf "%010d" (Tuple.int_exn tuple (W.column "unique1"))

let () =
  (* This example works at the iterator level, below plans and sessions:
     a bare environment (buffer pool + workspace) is all it needs. *)
  let env = Env.create ~frames:4096 () in
  W.load ~env ~name:"wisc" ~n ();
  let file, _ = Env.table env "wisc" in
  let index =
    Btree.create ~buffer:(Env.buffer env) ~device:(Env.workspace env)
      ~name:"wisc_unique1_idx" ~cmp:String.compare
  in
  let entries, build_time =
    Clock.time (fun () -> Scan.build_index ~tree:index ~key_of file)
  in
  Printf.printf "indexed %d records (tree height %d) in %.3f s\n\n" entries
    (Btree.height index) build_time;

  (* Range query: lo <= unique1 < hi. *)
  let query lo hi = function
    | `Full_scan ->
        Filter.iterator
          ~pred:(fun t ->
            let v = Tuple.int_exn t (W.column "unique1") in
            v >= lo && v < hi)
          (Scan.heap file)
    | `Index ->
        Scan.index_fetch ~tree:index ~file
          ~lo:(Btree.Inclusive (Printf.sprintf "%010d" lo))
          ~hi:(Btree.Exclusive (Printf.sprintf "%010d" hi))
  in
  let measure label iterator =
    let count, elapsed = Clock.time (fun () -> Iterator.consume iterator) in
    Printf.printf "%-34s %6d rows  %.4f s\n" label count elapsed;
    count
  in
  Printf.printf "narrow range (0.2%% selectivity):\n";
  let a = measure "  full scan + filter" (query 1000 1100 `Full_scan) in
  let b = measure "  index range scan + fetch" (query 1000 1100 `Index) in
  assert (a = b);
  Printf.printf "\nwide range (60%% selectivity):\n";
  let a = measure "  full scan + filter" (query 0 (n * 6 / 10) `Full_scan) in
  let b = measure "  index range scan + fetch" (query 0 (n * 6 / 10) `Index) in
  assert (a = b);

  (* choose-plan: bind the access path at open time from the (run-time)
     range width. *)
  Printf.printf "\nchoose-plan (decides at open time):\n";
  let dynamic lo hi =
    let selectivity = float_of_int (hi - lo) /. float_of_int n in
    Choose.iterator
      ~decide:(fun () -> if selectivity < 0.05 then 1 else 0)
      ~alternatives:[| query lo hi `Full_scan; query lo hi `Index |]
  in
  ignore (measure "  narrow query (picks index)" (dynamic 2000 2100));
  ignore (measure "  wide query (picks full scan)" (dynamic 0 30_000))
