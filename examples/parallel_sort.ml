(* Parallel external sorting (paper section 4.4 and the companion report
   "Parallel External Sorting in Volcano").  Two organizations:

   1. a merge network: producer processes sort slices, the consumer merges
      their streams with the keep-separate exchange variant;
   2. the "one process per disk" layout: each group member scans its slice,
      repartitions by key range through a no-fork interchange, sorts its
      range locally, and the ranges concatenate in order — a sorted,
      range-partitioned file.

   Run with: dune exec examples/parallel_sort.exe *)

module Plan = Volcano_plan.Plan
module Env = Volcano_plan.Env
module Session = Volcano_plan.Session
module Parallel = Volcano_plan.Parallel
module Exchange = Volcano.Exchange
module Support = Volcano_tuple.Support
module Value = Volcano_tuple.Value
module W = Volcano_wisconsin.Wisconsin
module Tuple = Volcano_tuple.Tuple
module Clock = Volcano_util.Clock

let n = 60_000
let key = [ (W.column "unique1", Support.Asc) ]

let is_sorted rows =
  let cmp = Support.compare_on key in
  let rec walk = function
    | a :: (b :: _ as rest) -> cmp a b <= 0 && walk rest
    | _ -> true
  in
  walk rows

let () =
  Session.with_session ~frames:2048 ~page_size:4096 @@ fun s ->
  let env = Session.env s in
  Env.set_sort_run_capacity env 8_192 (* force external runs *);

  let serial = Plan.Sort { key; input = W.plan ~n () } in
  let rows, time = Clock.time (fun () -> Session.exec s (`Plan serial)) in
  assert (is_sorted rows);
  Printf.printf "serial external sort:        %d rows in %.3f s\n%!"
    (List.length rows) time;

  (* 1. merge network *)
  let merge_network degree =
    Parallel.parallel_sort ~degree ~key (W.plan_slice ~n ())
  in
  print_string "\n-- merge network (degree 3) --\n";
  print_string (Plan.explain env (merge_network 3));
  let rows2, time2 = Clock.time (fun () -> Session.exec s (`Plan (merge_network 3))) in
  assert (is_sorted rows2);
  assert (List.length rows2 = n);
  Printf.printf "merge network sort:           %d rows in %.3f s\n%!"
    (List.length rows2) time2;

  (* 2. range-partitioned sort with the no-fork interchange: one process
     per "disk", each both scans/partitions and sorts (section 4.4). *)
  let degree = 3 in
  let bounds =
    Array.init (degree - 1) (fun i -> Value.Int ((i + 1) * n / degree))
  in
  let range_partitioned =
    Plan.Exchange_merge
      {
        cfg = Exchange.config ~degree ();
        key;
        input =
          Plan.Sort
            {
              key;
              input =
                Plan.Interchange
                  {
                    cfg =
                      Exchange.config ~degree
                        ~partition:
                          (Exchange.Range_on (W.column "unique1", bounds))
                        ();
                    input = W.plan_slice ~n ();
                  };
            };
      }
  in
  print_string "\n-- range-partitioned sort, no-fork interchange --\n";
  print_string (Plan.explain env range_partitioned);
  let rows3, time3 = Clock.time (fun () -> Session.exec s (`Plan range_partitioned)) in
  assert (is_sorted rows3);
  assert (List.length rows3 = n);
  Printf.printf "range-partitioned sort:       %d rows in %.3f s\n"
    (List.length rows3) time3;
  print_string
    "\n(each group member sorted one key range; because the ranges are\n\
    \ ordered, the merge at the top degenerates to concatenation — the\n\
    \ paper's sorted file distributed over multiple disks)\n"
