(* Quickstart: load a Wisconsin relation, run a selection + aggregation,
   then run the same query with the subtree in its own process — the
   smallest possible use of the exchange operator.

   A [Session] bundles the environment (buffer pool + workspace device),
   the worker-pool scheduler, and the multi-query runtime behind one
   handle; [Session.exec] compiles and drains a plan.

   Run with: dune exec examples/quickstart.exe *)

module Plan = Volcano_plan.Plan
module Session = Volcano_plan.Session
module Parallel = Volcano_plan.Parallel
module W = Volcano_wisconsin.Wisconsin
module Expr = Volcano_tuple.Expr
module Tuple = Volcano_tuple.Tuple

let () =
  Session.with_session ~frames:512 ~page_size:4096 @@ fun s ->
  let env = Session.env s in

  (* Materialize 10,000 Wisconsin rows as a stored table. *)
  W.load ~env ~name:"wisc" ~n:10_000 ();
  Printf.printf "loaded table 'wisc' with %d rows\n%!" 10_000;

  (* SELECT ten, count, sum(unique1) FROM wisc WHERE two = 0 GROUP BY ten *)
  let query =
    let open Expr.Infix in
    Plan.Aggregate
      {
        algo = Plan.Hash_based;
        group_by = [ W.column "ten" ];
        aggs =
          [
            Volcano_ops.Aggregate.Count;
            Volcano_ops.Aggregate.Sum (Expr.col (W.column "unique1"));
          ];
        input =
          Plan.Filter
            {
              pred = Expr.col (W.column "two") = Expr.int 0;
              mode = `Compiled;
              input = Plan.Scan_table "wisc";
            };
      }
  in
  print_string "\n-- serial plan --\n";
  print_string (Plan.explain env query);
  let rows = Session.exec s (`Plan query) in
  List.iter
    (fun t ->
      Printf.printf "ten=%d  count=%d  sum=%d\n" (Tuple.int_exn t 0)
        (Tuple.int_exn t 1) (Tuple.int_exn t 2))
    (List.sort Tuple.compare rows);

  (* The same query, evaluated in a separate process: wrap it with one
     exchange operator.  No operator below changes. *)
  let parallel_query = Parallel.pipeline query in
  print_string "\n-- with one exchange on top --\n";
  print_string (Plan.explain env parallel_query);
  let rows_parallel = Session.exec s (`Plan parallel_query) in
  assert (
    List.sort Tuple.compare rows = List.sort Tuple.compare rows_parallel);
  Printf.printf "parallel run returned the same %d groups\n"
    (List.length rows_parallel)
