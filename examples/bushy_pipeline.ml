(* The paper's section 4.3 example, reconstructed at plan level: four
   operators A, B, C, D in three process groups A (1 process), BC (3
   processes) and D (4 processes) — eight processes, two exchanges X and Y:

       A            <- root process, group A
       |
       X  exchange  (3 producers)
       |
       B            \
       |             | group BC: B and C pass records by procedure call
       C            /
       |
       Y  exchange  (4 producers)
       |
       D            <- group D: partitioned scan

   Run with: dune exec examples/bushy_pipeline.exe *)

module Plan = Volcano_plan.Plan
module Session = Volcano_plan.Session
module Exchange = Volcano.Exchange
module Expr = Volcano_tuple.Expr
module Tuple = Volcano_tuple.Tuple
module W = Volcano_wisconsin.Wisconsin
module Clock = Volcano_util.Clock

let n = 100_000

let () =
  Session.with_session ~frames:512 @@ fun s ->
  let env = Session.env s in
  (* D: partitioned generation of the stored data.
     C: a selection; B: a projection; A: the root aggregation. *)
  let d = W.plan_slice ~n () in
  let y =
    Plan.Exchange { cfg = Exchange.config ~degree:4 ~packet_size:83 (); input = d }
  in
  let c =
    let pred =
      Expr.Infix.( = ) (Expr.col (W.column "ten_percent")) (Expr.int 0)
    in
    Plan.Filter { pred; mode = `Compiled; input = y }
  in
  let b =
    Plan.Project_cols { cols = [ W.column "unique1"; W.column "four" ]; input = c }
  in
  let x = Plan.Exchange { cfg = Exchange.config ~degree:3 ~packet_size:83 (); input = b } in
  let a =
    Plan.Aggregate
      {
        algo = Plan.Hash_based;
        group_by = [ 1 ];
        aggs = [ Volcano_ops.Aggregate.Count; Volcano_ops.Aggregate.Max (Expr.col 0) ];
        input = x;
      }
  in
  print_string "-- the eight-process plan --\n";
  print_string (Plan.explain env a);
  let rows, time = Clock.time (fun () -> Session.exec s (`Plan a)) in
  Printf.printf "\n%d records flowed D -> C -> B -> A across 8 processes in %.3f s\n\n"
    (n / 10) time;
  List.iter
    (fun t ->
      Printf.printf "four=%d  count=%d  max(unique1)=%d\n" (Tuple.int_exn t 0)
        (Tuple.int_exn t 1) (Tuple.int_exn t 2))
    (List.sort Tuple.compare rows);
  (* Sanity: 10% of the data survives the filter.  Survivors have
     unique1 = 0 (mod 10), hence even unique1, hence four in {0, 2}. *)
  assert (List.length rows = 2);
  let total = List.fold_left (fun acc t -> acc + Tuple.int_exn t 1) 0 rows in
  assert (total = n / 10)
