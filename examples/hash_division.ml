(* Relational division, serial and parallel.

   The query: which students are enrolled in EVERY required course?
   dividend = enrollment(student, course), divisor = required(course).

   Section 4.4 reports that once the broadcast variant of exchange existed,
   "parallelizing our hash-division programs using both divisor
   partitioning and quotient partitioning took only about three hours" —
   this example reconstructs both parallelizations as plan rewrites around
   the unchanged hash-division operator.

   Run with: dune exec examples/hash_division.exe *)

module Plan = Volcano_plan.Plan
module Session = Volcano_plan.Session
module Exchange = Volcano.Exchange
module Expr = Volcano_tuple.Expr
module Tuple = Volcano_tuple.Tuple
module Rng = Volcano_util.Rng
module Clock = Volcano_util.Clock

let students = 2_000
let courses = 40
let required = [ 3; 7; 11; 19; 23 ]

(* Student s enrolls in course c with ~70% probability, deterministic. *)
let enrollment =
  let rng = Rng.create 2024L in
  List.concat_map
    (fun s ->
      List.filter_map
        (fun c -> if Rng.int rng 10 < 7 then Some (Tuple.of_ints [ s; c ]) else None)
        (List.init courses Fun.id))
    (List.init students Fun.id)

let dividend_tuples = enrollment
let divisor_tuples = List.map (fun c -> Tuple.of_ints [ c ]) required

let dividend = Plan.Scan_list { arity = 2; tuples = dividend_tuples }
let divisor = Plan.Scan_list { arity = 1; tuples = divisor_tuples }

(* Slice-aware leaves for the parallel variants. *)
let dividend_slice =
  let arr = Array.of_list dividend_tuples in
  Plan.Generate_slice
    { arity = 2; count = Array.length arr; gen = (fun i -> arr.(i)) }

let divisor_slice =
  let arr = Array.of_list divisor_tuples in
  Plan.Generate_slice
    { arity = 1; count = Array.length arr; gen = (fun i -> arr.(i)) }

let division ~dividend ~divisor algo =
  Plan.Division
    { algo; quotient = [ 0 ]; divisor_attrs = [ 1 ]; divisor_key = [ 0 ];
      dividend; divisor }

let run_sorted s plan = List.sort Tuple.compare (Session.exec s (`Plan plan))

let () =
  Session.with_session ~frames:1024 @@ fun s ->
  let env = Session.env s in
  Printf.printf "enrollment rows: %d; required courses: %d\n\n"
    (List.length dividend_tuples) (List.length required);

  (* Serial: three algorithms must agree. *)
  let reference = ref [] in
  List.iter
    (fun (name, algo) ->
      let plan = division ~dividend ~divisor algo in
      let rows, time = Clock.time (fun () -> run_sorted s plan) in
      if !reference = [] then reference := rows
      else assert (List.equal Tuple.equal !reference rows);
      Printf.printf "%-16s %4d students qualify   %.3f s\n" name
        (List.length rows) time)
    [ ("hash-division", `Hash); ("count-division", `Count); ("sort-division", `Sort) ];

  let degree = 4 in

  (* Quotient partitioning: partition the dividend by student; replicate
     the divisor to every partition (broadcast exchange). *)
  let quotient_partitioned =
    Plan.Exchange
      {
        cfg = Exchange.config ~degree ();
        input =
          division
            ~dividend:
              (Plan.Exchange
                 {
                   cfg =
                     Exchange.config ~degree
                       ~partition:(Exchange.Hash_on [ 0 ]) ();
                   input = dividend_slice;
                 })
            ~divisor:
              (Plan.Exchange
                 {
                   cfg =
                     Exchange.config ~degree ~partition:Exchange.Broadcast ();
                   input = divisor_slice;
                 })
            `Hash;
      }
  in
  print_string "\n-- quotient partitioning --\n";
  print_string (Plan.explain env quotient_partitioned);
  let rows, time = Clock.time (fun () -> run_sorted s quotient_partitioned) in
  assert (List.equal Tuple.equal !reference rows);
  Printf.printf "quotient-partitioned: %d students, %.3f s\n" (List.length rows) time;

  (* Divisor partitioning: partition the divisor; replicate the dividend.
     A student qualifies iff complete against every NON-EMPTY divisor
     partition (hash partitioning may leave some of the [degree] partitions
     without any course; those emit nothing), so a count aggregate over the
     partial results finishes the job. *)
  let nonempty_partitions =
    let hash = Volcano_tuple.Support.Partition.hash ~consumers:degree ~on:[ 0 ] () in
    List.length
      (List.sort_uniq compare
         (List.map (fun c -> hash (Tuple.of_ints [ c ])) required))
  in
  let count_is_degree =
    Expr.Infix.( = ) (Expr.col 1) (Expr.int nonempty_partitions)
  in
  let divisor_partitioned =
    Plan.Project_cols
      {
        cols = [ 0 ];
        input =
          Plan.Filter
            {
              pred = count_is_degree;
              mode = `Compiled;
              input =
                Plan.Aggregate
                  {
                    algo = Plan.Hash_based;
                    group_by = [ 0 ];
                    aggs = [ Volcano_ops.Aggregate.Count ];
                    input =
                      Plan.Exchange
                        {
                          cfg = Exchange.config ~degree ();
                          input =
                            division
                              ~dividend:
                                (Plan.Exchange
                                   {
                                     cfg =
                                       Exchange.config ~degree
                                         ~partition:Exchange.Broadcast ();
                                     input = dividend_slice;
                                   })
                              ~divisor:
                                (Plan.Interchange
                                   {
                                     cfg =
                                       Exchange.config ~degree
                                         ~partition:(Exchange.Hash_on [ 0 ]) ();
                                     input = divisor_slice;
                                   })
                              `Hash;
                        };
                    };
            };
      }
  in
  print_string "\n-- divisor partitioning --\n";
  print_string (Plan.explain env divisor_partitioned);
  let rows, time = Clock.time (fun () -> run_sorted s divisor_partitioned) in
  assert (List.equal Tuple.equal !reference rows);
  Printf.printf "divisor-partitioned: %d students, %.3f s\n" (List.length rows) time
