(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section plus the ablations listed in DESIGN.md.

   Usage:  dune exec bench/main.exe [-- experiment ...] [--json FILE]
           dune exec bench/main.exe -- --check BASELINE [--tolerance T]
           dune exec bench/main.exe -- --check-mq BASELINE [--tolerance T]
           dune exec bench/main.exe -- --check-batch BASELINE [--tolerance T]
           dune exec bench/main.exe -- --check-serve BASELINE [--tolerance T]
           dune exec bench/main.exe -- --check-shard BASELINE [--tolerance T]
           dune exec bench/main.exe -- --check-sql
   Experiments: t1 fig2 mq batch serve shard sql a1 a2 a3 a4 a5 a6 a7 a8
   micro all (default: all)
   --json FILE writes the machine-readable results the experiments
   accumulated (see Bench_common.json_add), e.g. BENCH_fig2.json.
   --check re-measures the fig2 sweep against a committed baseline JSON
   and exits nonzero when any packet size regresses beyond the tolerance
   (default 0.15); --check-mq does the same for the concurrent-query
   bench against BENCH_mq.json and additionally enforces the pooled
   scheduler's 2x-over-dedicated throughput floor; --check-batch does
   the same for the batch-size sweep against BENCH_batch.json and
   enforces the 2x best-batch-over-record-at-a-time floor; --check-serve
   re-drives the concurrent-client serving burst against BENCH_serve.json
   with a zero-dropped-requests floor; --check-shard re-runs the sharded
   stored-table aggregate against BENCH_shard.json with equal-results and
   fewer-bytes-over-the-wire floors; --check-sql re-plans the SQL
   acceptance query (join + group-by over a sharded table) with
   baseline-free floors: planlint-clean, at least one keyed exchange,
   rows equal to the hand-built plans, and wall clock within 1.3x of
   the hand-built parallel plan; `dune build @bench-smoke` runs all
   six.
   Environment: VOLCANO_RECORDS (default 100000),
                VOLCANO_SWEEP_RECORDS (default 30000),
                VOLCANO_BENCH_REPS (default 6; gated timings are
                min-of-reps),
                VOLCANO_SERVE_CLIENTS / VOLCANO_SERVE_REQUESTS /
                VOLCANO_SERVE_ROWS (default 500 / 4 / 64),
                VOLCANO_SHARD_ROWS (default 40000). *)

(* The shard bench re-executes this binary as its worker processes;
   dispatch before argument parsing ever sees the argv. *)
let () =
  if Array.length Sys.argv >= 3 && Sys.argv.(1) = "shard-worker" then begin
    Bench_shard.worker_main ~socket:Sys.argv.(2);
    exit 0
  end

let experiments =
  [
    ("t1", Bench_t1.run);
    ("fig2", Bench_fig2.run);
    ("mq", Bench_mq.run);
    ("batch", Bench_batch.run);
    ("serve", Bench_serve.run);
    ("shard", Bench_shard.run);
    ("sql", Bench_sql.run);
    ("a1", Bench_ablations.a1_flow_slack);
    ("a2", Bench_ablations.a2_fork_scheme);
    ("a3", Bench_ablations.a3_partition_balance);
    ("a4", Bench_ablations.a4_buffer_locking);
    ("a5", Bench_ablations.a5_division_partitioning);
    ("a6", Bench_ablations.a6_parallel_sort);
    ("a7", Bench_ablations.a7_speedup);
    ("a8", Bench_ablations.a8_broadcast);
    ("micro", Bench_micro.run);
  ]

type opts = {
  names : string list;
  json : string option;
  check : string option;
  check_mq : string option;
  check_batch : string option;
  check_serve : string option;
  check_shard : string option;
  check_sql : bool;
  tolerance : float;
}

let rec split_args opts = function
  | [] -> { opts with names = List.rev opts.names }
  | "--json" :: path :: rest -> split_args { opts with json = Some path } rest
  | "--json" :: [] ->
      prerr_endline "--json requires a FILE argument";
      exit 2
  | "--check" :: path :: rest -> split_args { opts with check = Some path } rest
  | "--check" :: [] ->
      prerr_endline "--check requires a BASELINE argument";
      exit 2
  | "--check-mq" :: path :: rest ->
      split_args { opts with check_mq = Some path } rest
  | "--check-mq" :: [] ->
      prerr_endline "--check-mq requires a BASELINE argument";
      exit 2
  | "--check-batch" :: path :: rest ->
      split_args { opts with check_batch = Some path } rest
  | "--check-batch" :: [] ->
      prerr_endline "--check-batch requires a BASELINE argument";
      exit 2
  | "--check-serve" :: path :: rest ->
      split_args { opts with check_serve = Some path } rest
  | "--check-serve" :: [] ->
      prerr_endline "--check-serve requires a BASELINE argument";
      exit 2
  | "--check-shard" :: path :: rest ->
      split_args { opts with check_shard = Some path } rest
  | "--check-shard" :: [] ->
      prerr_endline "--check-shard requires a BASELINE argument";
      exit 2
  | "--check-sql" :: rest -> split_args { opts with check_sql = true } rest
  | "--tolerance" :: t :: rest -> (
      match float_of_string_opt t with
      | Some tolerance when tolerance >= 0.0 ->
          split_args { opts with tolerance } rest
      | Some _ | None ->
          prerr_endline "--tolerance requires a non-negative number";
          exit 2)
  | "--tolerance" :: [] ->
      prerr_endline "--tolerance requires a number argument";
      exit 2
  | name :: rest -> split_args { opts with names = name :: opts.names } rest

let () =
  let opts =
    split_args
      {
        names = [];
        json = None;
        check = None;
        check_mq = None;
        check_batch = None;
        check_serve = None;
        check_shard = None;
        check_sql = false;
        tolerance = 0.15;
      }
      (List.tl (Array.to_list Sys.argv))
  in
  (match opts.check with
  | Some baseline ->
      exit (if Bench_fig2.check ~baseline ~tolerance:opts.tolerance then 0 else 1)
  | None -> ());
  (match opts.check_mq with
  | Some baseline ->
      exit (if Bench_mq.check ~baseline ~tolerance:opts.tolerance then 0 else 1)
  | None -> ());
  (match opts.check_batch with
  | Some baseline ->
      exit
        (if Bench_batch.check ~baseline ~tolerance:opts.tolerance then 0 else 1)
  | None -> ());
  (match opts.check_serve with
  | Some baseline ->
      exit
        (if Bench_serve.check ~baseline ~tolerance:opts.tolerance then 0 else 1)
  | None -> ());
  (match opts.check_shard with
  | Some baseline ->
      exit
        (if Bench_shard.check ~baseline ~tolerance:opts.tolerance then 0 else 1)
  | None -> ());
  if opts.check_sql then exit (if Bench_sql.check () then 0 else 1);
  let names, json_path = (opts.names, opts.json) in
  let requested =
    match names with
    | [] | [ "all" ] -> List.map fst experiments
    | names -> names
  in
  Printf.printf
    "Volcano reproduction benchmarks — paper: Graefe, \"Encapsulation of\n\
     Parallelism in the Volcano Query Processing System\" (1989/1990)\n\
     host: %d CPU core(s) available to this process\n"
    (Domain.recommended_domain_count ());
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s all\n" name
            (String.concat " " (List.map fst experiments));
          exit 2)
    requested;
  match json_path with
  | None -> ()
  | Some path ->
      Bench_common.write_json path;
      Printf.printf "\nresults written to %s\n" path
