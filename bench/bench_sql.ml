(* SQL optimizer acceptance: the one-SQL-string Wisconsin-shaped query
   (equi-join + group-by over a hash-sharded stored table) against the
   plan a careful author would build by hand with explicit exchange
   placement.

   Four floors, wired into `--check-sql` / @bench-smoke:
     - the chosen plan passes planlint with zero diagnostics;
     - it places at least one non-round-robin (keyed) exchange on its
       own — the shard-aligned join and grouped aggregation both force
       data movement the optimizer must discover, not be handed;
     - it computes exactly the hand plan's (and the serial plan's) rows;
     - its wall clock is within 1.3x of the hand-built parallel plan
       (min-of-reps on both sides, so scheduler noise cancels). *)

open Bench_common
module Parallel = Volcano_plan.Parallel
module Partition = Volcano_plan.Partition
module Exchange = Volcano.Exchange
module Agg = Volcano_ops.Aggregate
module Expr = Volcano_tuple.Expr
module W = Volcano_wisconsin.Wisconsin
module Sql = Volcano_sql.Sql

let sql_rows =
  match Sys.getenv_opt "VOLCANO_SQL_ROWS" with
  | Some s -> int_of_string s
  | None -> 40_000

let parts = 3
let ratio_floor = 1.3

(* emp is a plain stored table; hemp is the same relation hash-sharded
   on the join key, partition k placed at site k. *)
let make_env () =
  let env = Env.create ~frames:2048 () in
  W.load ~env ~name:"emp" ~n:sql_rows ();
  W.load ~env ~name:"hemp" ~n:sql_rows ();
  ignore
    (Partition.split env ~table:"hemp"
       ~spec:(Partition.hash_spec [ W.column "unique1" ])
       ~parts ());
  env

let query =
  "SELECT h.ten, COUNT(*), SUM(e.unique1) FROM hemp AS h JOIN emp AS e ON \
   (h.unique1 = e.unique1) GROUP BY h.ten"

(* What a careful plan author writes today: scan hemp's partition files
   at the shard width (already co-located on the join key), repartition
   emp to match, join per member, pre-aggregate locally, repartition the
   partials on the group key, combine, gather.  COUNT combines as a sum
   of partial counts. *)
let hand_plan () =
  let ukey = W.column "unique1" in
  let ten = W.column "ten" in
  let keyed cols =
    Exchange.config ~degree:parts ~partition:(Exchange.Hash_on cols) ()
  in
  let join =
    Plan.Match
      {
        algo = Plan.Hash_based;
        kind = Volcano_ops.Match_op.Join;
        left_key = [ ukey ];
        right_key = [ ukey ];
        left = Plan.Scan_table_slice "hemp";
        right =
          Plan.Exchange
            { cfg = keyed [ ukey ]; input = Plan.Scan_table_slice "emp" };
      }
  in
  let local =
    Plan.Aggregate
      {
        algo = Plan.Hash_based;
        group_by = [ ten ];
        aggs = [ Agg.Count; Agg.Sum (Expr.Col (16 + ukey)) ];
        input = join;
      }
  in
  let combine =
    Plan.Aggregate
      {
        algo = Plan.Hash_based;
        group_by = [ 0 ];
        aggs = [ Agg.Sum (Expr.Col 1); Agg.Sum (Expr.Col 2) ];
        input = Plan.Exchange { cfg = keyed [ 0 ]; input = local };
      }
  in
  Plan.Exchange { cfg = Exchange.config ~degree:parts (); input = combine }

(* The serial reference answer, for the equal-results floor. *)
let serial_plan () =
  Plan.Aggregate
    {
      algo = Plan.Hash_based;
      group_by = [ W.column "ten" ];
      aggs =
        [ Agg.Count; Agg.Sum (Expr.Col (16 + W.column "unique1")) ];
      input =
        Plan.Match
          {
            algo = Plan.Hash_based;
            kind = Volcano_ops.Match_op.Join;
            left_key = [ W.column "unique1" ];
            right_key = [ W.column "unique1" ];
            left = Plan.Scan_table "hemp";
            right = Plan.Scan_table "emp";
          };
    }

let rec plan_nodes p = p :: List.concat_map plan_nodes (Plan.children p)

let keyed_exchanges p =
  List.filter
    (function
      | Plan.Exchange { cfg; _ } | Plan.Exchange_merge { cfg; _ } -> (
          match cfg.Exchange.partition with
          | Exchange.Hash_on _ | Exchange.Range_on _ -> true
          | _ -> false)
      | _ -> false)
    (plan_nodes p)

type measured = {
  sql_s : float;
  hand_s : float;
  serial_s : float;
  groups : int;
  diags : int;
  keyed : int;
  results_equal : bool;
}

let measure () =
  let env = make_env () in
  let choice = Sql.plan ~workers:parts env query in
  let sql_plan = choice.Volcano_sql.Optimizer.plan in
  let hand = hand_plan () in
  let serial = serial_plan () in
  let diags = List.length (Compile.analyze ~workers:parts env sql_plan) in
  let keyed = List.length (keyed_exchanges sql_plan) in
  let sorted rows = List.sort Tuple.compare rows in
  let sql_rows_out = run_plan env sql_plan in
  let hand_rows = run_plan env hand in
  let serial_rows = run_plan env serial in
  let results_equal =
    sorted sql_rows_out = sorted hand_rows
    && sorted sql_rows_out = sorted serial_rows
  in
  let time plan =
    min_of_reps (fun () ->
        snd (Clock.time (fun () -> ignore (run_plan env plan))))
  in
  let sql_s = time sql_plan in
  let hand_s = time hand in
  let serial_s = time serial in
  {
    sql_s;
    hand_s;
    serial_s;
    groups = List.length sql_rows_out;
    diags;
    keyed;
    results_equal;
  }

let print_measured m =
  row "%-28s %10s\n" "" "elapsed(s)";
  hline 40;
  row "%-28s %10.3f\n" "SQL (optimizer)" m.sql_s;
  row "%-28s %10.3f\n" "hand-built parallel" m.hand_s;
  row "%-28s %10.3f\n" "hand-built serial" m.serial_s;
  row
    "\nratio vs hand %.3fx, %d keyed exchange(s), %d diagnostic(s), %d \
     groups%s\n"
    (m.sql_s /. m.hand_s)
    m.keyed m.diags m.groups
    (if m.results_equal then "" else "  RESULTS DIVERGE")

let run () =
  header
    (Printf.sprintf
       "SQL front door: optimizer vs hand-built plan, %d rows, %d shards"
       sql_rows parts);
  Printf.printf "%s\n\n" query;
  let m = measure () in
  print_measured m;
  json_add "sql"
    (Jsonx.Obj
       [
         ("rows", Jsonx.Int sql_rows);
         ("parts", Jsonx.Int parts);
         ("sql_s", Jsonx.Float m.sql_s);
         ("hand_s", Jsonx.Float m.hand_s);
         ("serial_s", Jsonx.Float m.serial_s);
         ("keyed_exchanges", Jsonx.Int m.keyed);
         ("diagnostics", Jsonx.Int m.diags);
         ("groups", Jsonx.Int m.groups);
       ])

(* ------------------------------------------------------------------ *)
(* Acceptance gate: --check-sql.  No baseline file: every floor is
   relative to plans built in the same process, so the gate is
   host-speed independent. *)

let check () =
  header
    (Printf.sprintf "SQL check: optimizer vs hand plan, %d rows (floor %.1fx)"
       sql_rows ratio_floor);
  Printf.printf "%s\n\n" query;
  let m = measure () in
  print_measured m;
  let lint_ok = m.diags = 0 in
  let keyed_ok = m.keyed > 0 in
  let ratio = m.sql_s /. m.hand_s in
  let speed_ok = ratio <= ratio_floor in
  row "\nplanlint: %s\n"
    (if lint_ok then "clean" else Printf.sprintf "%d DIAGNOSTIC(S)" m.diags);
  row "keyed exchanges: %d  %s\n" m.keyed
    (if keyed_ok then "ok" else "NONE PLACED");
  row "results: %s\n" (if m.results_equal then "equal" else "DIVERGED");
  row "elapsed vs hand plan: %.3f / %.3f = %.2fx (floor %.1fx)  %s\n" m.sql_s
    m.hand_s ratio ratio_floor
    (if speed_ok then "ok" else "TOO SLOW");
  lint_ok && keyed_ok && m.results_equal && speed_ok
