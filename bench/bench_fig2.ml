(* Figures 2a and 2b: exchange performance as a function of packet size.

   Topology (paper, section 5): a producer group of 3 processes generates
   100,000 records which flow through two intermediate 3-process groups to a
   single consumer; flow control with 3 slack packets.  Packet size sweeps
   1..83.  The paper measured 171 s at size 1, 94 s at 2, 15.0 s at 50 and
   13.7 s at 83 — the curve is a straight line on a log-log plot below 10
   records/packet (per-packet cost dominates) and flattens above (per-record
   cost dominates). *)

open Bench_common
module Exchange = Volcano.Exchange
module Sim = Volcano_sim.Sim
module Calibration = Volcano_sim.Calibration

let packet_sizes = [ 1; 2; 5; 10; 20; 50; 83 ]

let paper_value = function
  | 1 -> Some 171.0
  | 2 -> Some 94.0
  | 50 -> Some 15.0
  | 83 -> Some 13.7
  | _ -> None

(* 3 -> 3 -> 3 -> 1 pipeline as a plan. *)
let sweep_plan n packet_size =
  let cfg = Exchange.config ~degree:3 ~packet_size ~flow_slack:(Some 3) () in
  Plan.Exchange
    {
      cfg;
      input =
        Plan.Exchange
          { cfg; input = Plan.Exchange { cfg; input = generate_slice n } };
    }

let measure_real n packet_size =
  let env = fresh_env () in
  let count, elapsed = time_count env (sweep_plan n packet_size) in
  assert (count = n);
  elapsed

let series () =
  List.map
    (fun packet_size ->
      let real = measure_real sweep_records packet_size in
      let sim = (Calibration.fig2a ~packet_size ()).Sim.elapsed in
      (packet_size, real, sim))
    packet_sizes

let fig2a () =
  header
    (Printf.sprintf
       "Figure 2a: elapsed time vs packet size (real: %d records on 1 CPU; \
        sim: 100,000 records on 12 CPUs)"
       sweep_records);
  row "%8s %14s %14s %16s %12s\n" "packet" "real (s)" "real us/rec"
    "sim 12-cpu (s)" "paper (s)";
  hline 70;
  let data = series () in
  List.iter
    (fun (packet_size, real, sim) ->
      row "%8d %14.3f %14.2f %16.1f %12s\n" packet_size real
        (per_record_us real sweep_records)
        sim
        (match paper_value packet_size with
        | Some v -> Printf.sprintf "%.1f" v
        | None -> "-"))
    data;
  data

let fig2b data =
  header "Figure 2b: the same data, doubly logarithmic";
  row "%8s %12s %12s %12s\n" "packet" "log10(ps)" "log10 real" "log10 sim";
  hline 48;
  List.iter
    (fun (packet_size, real, sim) ->
      row "%8d %12.3f %12.3f %12.3f\n" packet_size
        (log10 (float_of_int packet_size))
        (log10 real) (log10 sim))
    data;
  (* Fitted slope over the small-packet regime (sizes < 10): the paper's
     hypothesis is a straight line, i.e. elapsed ~ c / packet_size. *)
  let slope series =
    let points =
      List.filter_map
        (fun (ps, v) ->
          if ps < 10 then Some (log10 (float_of_int ps), log10 v) else None)
        series
    in
    let n = float_of_int (List.length points) in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
    ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))
  in
  let real_slope = slope (List.map (fun (p, r, _) -> (p, r)) data) in
  let sim_slope = slope (List.map (fun (p, _, s) -> (p, s)) data) in
  row
    "\nfitted log-log slope for packets < 10: real %.2f, sim %.2f\n\
     (a slope near -1 affirms the hypothesis that for truly small packets\n\
    \ most of the elapsed time is spent on data exchange)\n"
    real_slope sim_slope

let json_of_series data =
  Jsonx.List
    (List.map
       (fun (packet_size, real, sim) ->
         Jsonx.Obj
           [
             ("packet_size", Jsonx.Int packet_size);
             ("real_s", Jsonx.Float real);
             ("real_us_per_record", Jsonx.Float (per_record_us real sweep_records));
             ("sim_12cpu_s", Jsonx.Float sim);
             ( "paper_s",
               match paper_value packet_size with
               | Some v -> Jsonx.Float v
               | None -> Jsonx.Null );
           ])
       data)

(* One fully-instrumented run of the sweep topology at the paper's largest
   packet size: per-node rows/time plus packet, flow-control, and group
   spawn/join statistics for each of the three exchanges. *)
let profile_packet83 () =
  let env = fresh_env () in
  let report =
    Volcano_plan.Profile.run env (sweep_plan sweep_records 83)
  in
  Volcano_plan.Profile.to_json report

let run () =
  let data = fig2a () in
  fig2b data;
  json_add "fig2"
    (Jsonx.Obj
       [
         ("series", json_of_series data);
         ("profile_packet83", profile_packet83 ());
       ])
