(* Figures 2a and 2b: exchange performance as a function of packet size.

   Topology (paper, section 5): a producer group of 3 processes generates
   100,000 records which flow through two intermediate 3-process groups to a
   single consumer; flow control with 3 slack packets.  Packet size sweeps
   1..83.  The paper measured 171 s at size 1, 94 s at 2, 15.0 s at 50 and
   13.7 s at 83 — the curve is a straight line on a log-log plot below 10
   records/packet (per-packet cost dominates) and flattens above (per-record
   cost dominates). *)

open Bench_common
module Exchange = Volcano.Exchange
module Sim = Volcano_sim.Sim
module Calibration = Volcano_sim.Calibration

let packet_sizes = [ 1; 2; 5; 10; 20; 50; 83 ]

let paper_value = function
  | 1 -> Some 171.0
  | 2 -> Some 94.0
  | 50 -> Some 15.0
  | 83 -> Some 13.7
  | _ -> None

(* 3 -> 3 -> 3 -> 1 pipeline as a plan. *)
let sweep_plan n packet_size =
  let cfg = Exchange.config ~degree:3 ~packet_size ~flow_slack:(Some 3) () in
  Plan.Exchange
    {
      cfg;
      input =
        Plan.Exchange
          { cfg; input = Plan.Exchange { cfg; input = generate_slice n } };
    }

let measure_real n packet_size =
  min_of_reps (fun () ->
      let env = fresh_env () in
      let count, elapsed = time_count env (sweep_plan n packet_size) in
      assert (count = n);
      elapsed)

(* A size's reps run consecutively (that is the min-of-N statistic the
   gate is defined over; back-to-back identical runs also recycle
   identically-shaped major-heap blocks, so the min reflects the steady
   state rather than allocator churn), but sizes are measured from the
   largest down: the small-packet runs churn out tens of thousands of
   short-lived packet shells, and the marking debt they leave behind
   would otherwise tax whichever point is measured next.  Results still
   read in ascending order. *)
let measure_sweep sizes =
  List.rev_map
    (fun packet_size -> (packet_size, measure_real sweep_records packet_size))
    (List.rev sizes)

let series () =
  List.map
    (fun (packet_size, real) ->
      let sim = (Calibration.fig2a ~packet_size ()).Sim.elapsed in
      (packet_size, real, sim))
    (measure_sweep packet_sizes)

let fig2a () =
  header
    (Printf.sprintf
       "Figure 2a: elapsed time vs packet size (real: %d records on 1 CPU; \
        sim: 100,000 records on 12 CPUs)"
       sweep_records);
  row "%8s %14s %14s %16s %12s\n" "packet" "real (s)" "real us/rec"
    "sim 12-cpu (s)" "paper (s)";
  hline 70;
  let data = series () in
  List.iter
    (fun (packet_size, real, sim) ->
      row "%8d %14.3f %14.2f %16.1f %12s\n" packet_size real
        (per_record_us real sweep_records)
        sim
        (match paper_value packet_size with
        | Some v -> Printf.sprintf "%.1f" v
        | None -> "-"))
    data;
  data

let fig2b data =
  header "Figure 2b: the same data, doubly logarithmic";
  row "%8s %12s %12s %12s\n" "packet" "log10(ps)" "log10 real" "log10 sim";
  hline 48;
  List.iter
    (fun (packet_size, real, sim) ->
      row "%8d %12.3f %12.3f %12.3f\n" packet_size
        (log10 (float_of_int packet_size))
        (log10 real) (log10 sim))
    data;
  (* Fitted slope over the small-packet regime (sizes < 10): the paper's
     hypothesis is a straight line, i.e. elapsed ~ c / packet_size. *)
  let slope series =
    let points =
      List.filter_map
        (fun (ps, v) ->
          if ps < 10 then Some (log10 (float_of_int ps), log10 v) else None)
        series
    in
    let n = float_of_int (List.length points) in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
    ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))
  in
  let real_slope = slope (List.map (fun (p, r, _) -> (p, r)) data) in
  let sim_slope = slope (List.map (fun (p, _, s) -> (p, s)) data) in
  row
    "\nfitted log-log slope for packets < 10: real %.2f, sim %.2f\n\
     (a slope near -1 affirms the hypothesis that for truly small packets\n\
    \ most of the elapsed time is spent on data exchange)\n"
    real_slope sim_slope

let json_of_series data =
  Jsonx.List
    (List.map
       (fun (packet_size, real, sim) ->
         Jsonx.Obj
           [
             ("packet_size", Jsonx.Int packet_size);
             ("real_s", Jsonx.Float real);
             ("real_us_per_record", Jsonx.Float (per_record_us real sweep_records));
             ("sim_12cpu_s", Jsonx.Float sim);
             ( "paper_s",
               match paper_value packet_size with
               | Some v -> Jsonx.Float v
               | None -> Jsonx.Null );
           ])
       data)

(* One fully-instrumented run of the sweep topology at the paper's largest
   packet size: per-node rows/time plus packet, flow-control, and group
   spawn/join statistics for each of the three exchanges. *)
let profile_packet83 () =
  let env = fresh_env () in
  let report =
    Volcano_plan.Profile.execute env (sweep_plan sweep_records 83)
  in
  Volcano_plan.Profile.to_json report

(* The committed baseline's fig2 series, if one is present in the working
   directory: regenerated result files carry it as [previous_series] so
   every BENCH_fig2.json shows its own before/after pair. *)
let baseline_series path =
  if Sys.file_exists path then
    match
      Option.bind (Jsonx.member "experiments" (Jsonx.read_file path))
        (fun e -> Option.bind (Jsonx.member "fig2" e) (Jsonx.member "series"))
    with
    | some_series -> some_series
    | exception _ -> None
  else None

let run () =
  let data = fig2a () in
  fig2b data;
  json_add "fig2"
    (Jsonx.Obj
       [
         ("reps", Jsonx.Int bench_reps);
         ("series", json_of_series data);
         ( "previous_series",
           Option.value ~default:Jsonx.Null (baseline_series "BENCH_fig2.json")
         );
         ("profile_packet83", profile_packet83 ());
       ])

(* ------------------------------------------------------------------ *)
(* Regression gate: --check BASELINE [--tolerance T]                   *)

(* Re-measure the sweep and compare each packet size's min-of-N wall time
   against the committed baseline.  Exceeding
   baseline * (1 + tolerance) + noise_floor at any point is a
   regression: the absolute floor matters now that the fast end of the
   sweep is single-digit milliseconds, where scheduler jitter alone
   exceeds any sane relative tolerance (it is invisible on the slow
   points).  Baselines from a different record count are incomparable
   and rejected outright. *)
let noise_floor_s = 0.003

let check ~baseline ~tolerance =
  let doc =
    try Jsonx.read_file baseline
    with
    | Sys_error msg ->
        Printf.eprintf "cannot read baseline: %s\n" msg;
        exit 2
    | Jsonx.Parse_error msg ->
        Printf.eprintf "cannot parse baseline %s: %s\n" baseline msg;
        exit 2
  in
  let ( let* ) o f =
    match o with
    | Some v -> f v
    | None ->
        Printf.eprintf "baseline %s has no fig2 series\n" baseline;
        exit 2
  in
  let* base_sweep =
    Option.bind (Jsonx.member "sweep_records" doc) Jsonx.to_int_opt
  in
  if base_sweep <> sweep_records then begin
    Printf.eprintf
      "baseline used %d sweep records but this run uses %d; set \
       VOLCANO_SWEEP_RECORDS=%d to compare\n"
      base_sweep sweep_records base_sweep;
    exit 2
  end;
  let* series =
    Option.bind (Jsonx.member "experiments" doc) (fun e ->
        Option.bind (Jsonx.member "fig2" e) (fun f ->
            Option.bind (Jsonx.member "series" f) Jsonx.to_list_opt))
  in
  header
    (Printf.sprintf
       "Regression check vs %s (min of %d runs, tolerance %+.0f%% + %.0f ms)"
       baseline bench_reps (tolerance *. 100.0) (noise_floor_s *. 1e3));
  row "%8s %14s %14s %9s  %s\n" "packet" "baseline (s)" "now (s)" "ratio"
    "verdict";
  hline 58;
  let targets =
    List.map
      (fun entry ->
        let* packet_size =
          Option.bind (Jsonx.member "packet_size" entry) Jsonx.to_int_opt
        in
        let* base =
          Option.bind (Jsonx.member "real_s" entry) Jsonx.to_float_opt
        in
        (packet_size, base))
      series
  in
  let now_by_size = measure_sweep (List.map fst targets) in
  let regressions =
    List.filter_map
      (fun (packet_size, base) ->
        let now = List.assoc packet_size now_by_size in
        let ratio = now /. base in
        let regressed = now > (base *. (1.0 +. tolerance)) +. noise_floor_s in
        row "%8d %14.4f %14.4f %9.2f  %s\n" packet_size base now ratio
          (if regressed then "REGRESSED"
           else if ratio < 1.0 then "improved"
           else "ok");
        if regressed then Some (packet_size, base, now) else None)
      targets
  in
  match regressions with
  | [] ->
      row "\nno regressions: all %d points within tolerance\n"
        (List.length series);
      true
  | _ ->
      row "\n%d of %d points regressed beyond %+.0f%%\n"
        (List.length regressions) (List.length series) (tolerance *. 100.0);
      false
