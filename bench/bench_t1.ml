(* T1: the section 5 in-text measurements.

   The paper: create 100,000 records of 4 integers, pass them over three
   process boundaries, release them.
     (a) no exchange operator:                         20.28 s
     (b) 3 exchanges, procedure-call (no-fork) mode:   28.00 s
         => 25.7 us/record/exchange overhead
     (c) pipeline of 4 processes, flow control on/off: 16.21 / 16.16 s

   We run the same three programs on the real engine (OCaml domains, one
   CPU here) and on the simulated 12-CPU Sequent. *)

open Bench_common
module Exchange = Volcano.Exchange
module Group = Volcano.Group
module Iterator = Volcano.Iterator
module Sim = Volcano_sim.Sim
module Calibration = Volcano_sim.Calibration

(* (b) three no-fork interchange boundaries in a solo group: partitioning
   always selects this process, so each boundary degenerates to procedure
   calls — precisely the paper's "does not create new processes" mode. *)
let interchange_chain n boundaries =
  let group = Group.solo () in
  let rec wrap depth input =
    if depth = 0 then input
    else
      wrap (depth - 1)
        (Exchange.interchange
           (Exchange.config ~degree:1 ())
           ~group ~input)
  in
  wrap boundaries (Iterator.generate ~count:n ~f:four_int_tuple)

let pipeline_plan n ~flow_slack =
  let cfg = Exchange.config ~degree:1 ~flow_slack () in
  Plan.Exchange
    {
      cfg;
      input =
        Plan.Exchange
          { cfg; input = Plan.Exchange { cfg; input = generate n } };
    }

let run () =
  let n = records in
  let env = fresh_env () in
  header (Printf.sprintf "T1: exchange overhead (%d records, 4 ints each)" n);

  let _, t_a = Volcano_util.Clock.time (fun () ->
      ignore (run_count_plan env (generate n))) in
  let count_b, t_b =
    Volcano_util.Clock.time (fun () ->
        Iterator.consume (interchange_chain n 3))
  in
  assert (count_b = n);
  let _, t_c_flow =
    time_count env (pipeline_plan n ~flow_slack:(Some 4))
  in
  let t_c_flow = t_c_flow in
  let _, t_c_noflow = time_count env (pipeline_plan n ~flow_slack:None) in

  let overhead_us = (t_b -. t_a) /. 3.0 /. float_of_int n *. 1e6 in

  row "%-44s %12s %14s\n" "configuration" "elapsed (s)" "us/record";
  hline 72;
  row "%-44s %12.3f %14.2f\n" "(a) no exchange" t_a (per_record_us t_a n);
  row "%-44s %12.3f %14.2f\n" "(b) 3 exchanges, procedure-call mode" t_b
    (per_record_us t_b n);
  row "%-44s %12.3f %14.2f\n" "(c) 4-process pipeline, flow control on"
    t_c_flow (per_record_us t_c_flow n);
  row "%-44s %12.3f %14.2f\n" "(c) 4-process pipeline, flow control off"
    t_c_noflow (per_record_us t_c_noflow n);
  hline 72;
  row "measured overhead per record per exchange: %.2f us (paper: 25.7 us)\n"
    overhead_us;

  header "T1 on the simulated 12-CPU Sequent Symmetry (100,000 records)";
  let sim_pipe = Calibration.t1_pipeline ~records:100_000 () in
  row "%-44s %12s %12s\n" "configuration" "sim (s)" "paper (s)";
  hline 72;
  row "%-44s %12.2f %12.2f\n" "(a) no exchange"
    (Calibration.t1_single_process ~records:100_000)
    20.28;
  row "%-44s %12.2f %12.2f\n" "(b) 3 exchanges, procedure-call mode"
    (Calibration.t1_interchange ~records:100_000 ~exchanges:3)
    28.00;
  row "%-44s %12.2f %12.2f\n" "(c) 4-process pipeline" sim_pipe.Sim.elapsed 16.21;
  row "\nqualitative checks: (b) > (a) (exchange adds per-record cost), and\n";
  row "on 12 CPUs (c) < (a): pipelined multi-process execution is warranted.\n"
