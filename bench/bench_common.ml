(* Shared helpers for the benchmark harness. *)

module Plan = Volcano_plan.Plan
module Env = Volcano_plan.Env
module Compile = Volcano_plan.Compile
module Tuple = Volcano_tuple.Tuple
module Clock = Volcano_util.Clock
module Jsonx = Volcano_obs.Jsonx

(* The harness drains plans on environments it configures itself, so it
   compiles directly rather than going through Session. *)
let run_plan ?check env plan =
  Volcano.Iterator.to_list (Compile.compile ?check env plan)

let run_count_plan ?check env plan =
  Volcano.Iterator.consume (Compile.compile ?check env plan)

(* The paper's experiments use 100,000 records.  The real-engine runs honor
   VOLCANO_RECORDS (default 100,000); the packet-size sweep uses a smaller
   default because 1-record packets on one CPU are slow by design. *)
let records =
  match Sys.getenv_opt "VOLCANO_RECORDS" with
  | Some s -> int_of_string s
  | None -> 100_000

let sweep_records =
  match Sys.getenv_opt "VOLCANO_SWEEP_RECORDS" with
  | Some s -> int_of_string s
  | None -> 30_000

(* Wall-clock numbers that gate regressions are a min-of-N statistic:
   the minimum over VOLCANO_BENCH_REPS (default 6) runs discards scheduler
   and GC noise, which on a single-core host dwarfs the effects being
   measured. *)
let bench_reps =
  match Sys.getenv_opt "VOLCANO_BENCH_REPS" with
  | Some s -> int_of_string s
  | None -> 6

let min_of_reps f =
  (* One discarded warmup rep: the first run after process start pays
     page faults and lazy heap growth that no steady-state run sees. *)
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to bench_reps do
    (* Settle GC debt from the previous rep outside the timed section, so
       a rep is not charged for its predecessor's garbage.  Twice: the
       first finishes any in-flight marking cycle, the second runs a
       complete cycle from a clean slate. *)
    Gc.full_major ();
    Gc.full_major ();
    best := Float.min !best (f ())
  done;
  !best

(* "creates records, fills them with 4 integers" (section 5). *)
let four_int_tuple i = Tuple.of_ints [ i; i + 1; i + 2; i + 3 ]

let generate n = Plan.Generate { arity = 4; count = n; gen = four_int_tuple }

let generate_slice n =
  Plan.Generate_slice { arity = 4; count = n; gen = four_int_tuple }

let fresh_env () = Env.create ~frames:256 ~page_size:4096 ()

let time_count env plan =
  let count, elapsed = Clock.time (fun () -> run_count_plan env plan) in
  (count, elapsed)

let per_record_us elapsed n = elapsed /. float_of_int n *. 1e6

(* Machine-readable results (--json FILE): experiments append entries here
   as they run; [write_json] wraps them with the run parameters. *)
let json_entries : (string * Jsonx.t) list ref = ref []
let json_add name json = json_entries := (name, json) :: !json_entries

let write_json path =
  Jsonx.write_file path
    (Jsonx.Obj
       [
         ("records", Jsonx.Int records);
         ("sweep_records", Jsonx.Int sweep_records);
         ("host_cores", Jsonx.Int (Domain.recommended_domain_count ()));
         ("experiments", Jsonx.Obj (List.rev !json_entries));
       ])

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let row fmt = Printf.printf fmt

let hline width = Printf.printf "%s\n" (String.make width '-')
