(* Concurrent-query throughput: N plans in flight on one scheduler.

   The workload is deliberately many-and-small: each query is a
   3-producer exchange over a few thousand generated records, so domain
   spawn and join cost dominates the work itself.  The pooled scheduler
   runs all producer tasks on the process-wide worker pool (steady-state
   reuse); the baseline is the dedicated scheduler, the paper's
   fork-per-producer behavior, which pays a fresh [Domain.spawn] for
   every producer of every query.  The gated statistic is aggregate
   throughput — queries per second with [plans] queries in flight. *)

open Bench_common
module Exchange = Volcano.Exchange
module Session = Volcano_plan.Session
module Sched = Volcano_sched.Sched

let plans = 16

(* Small per-query record count: big enough that a query does real
   exchange work (packets, flow control), small enough that spawn cost
   is the dominant term being measured. *)
let mq_records =
  match Sys.getenv_opt "VOLCANO_MQ_RECORDS" with
  | Some s -> int_of_string s
  | None -> 2_000

let query () =
  Plan.Exchange
    {
      cfg = Exchange.config ~degree:3 ~packet_size:83 ();
      input = generate_slice mq_records;
    }

(* One burst: submit [plans] queries, then await them all.  Elapsed is
   first-submit to last-await — the makespan of the whole burst. *)
let burst session =
  let _, elapsed =
    Clock.time (fun () ->
        let jobs =
          List.init plans (fun i ->
              Session.submit_count ~label:(Printf.sprintf "mq-%d" i) session
                (`Plan (query ())))
        in
        List.iter
          (fun job ->
            match Session.await job with
            | Ok count -> assert (count = mq_records)
            | Error exn -> raise exn)
          jobs)
  in
  elapsed

let measure ~sched =
  min_of_reps (fun () ->
      Session.with_session ~sched ~frames:256 ~page_size:4096
        ~max_concurrent:plans burst)

let measure_pair () =
  (* The pooled side uses the process-wide default pool: queries after
     the first reuse warm workers, which is exactly the steady state the
     scheduler exists to provide.  Dedicated is measured second so its
     domain churn cannot tax the pooled runs. *)
  let pooled = measure ~sched:(Sched.default ()) in
  let dedicated = measure ~sched:(Sched.dedicated ()) in
  (pooled, dedicated)

let throughput elapsed = float_of_int plans /. elapsed

let print_pair (pooled, dedicated) =
  row "%-28s %12s %14s\n" "scheduler" "makespan (s)" "queries/s";
  hline 56;
  row "%-28s %12.4f %14.1f\n"
    (Printf.sprintf "pool (%d workers)" (Sched.workers (Sched.default ())))
    pooled (throughput pooled);
  row "%-28s %12.4f %14.1f\n" "dedicated (spawn-per-task)" dedicated
    (throughput dedicated);
  row "\nthroughput ratio pool/dedicated: %.2fx\n" (dedicated /. pooled)

let run () =
  header
    (Printf.sprintf
       "Concurrent queries: %d plans in flight, %d records each (min of %d \
        bursts)"
       plans mq_records bench_reps);
  let ((pooled, dedicated) as pair) = measure_pair () in
  print_pair pair;
  json_add "mq"
    (Jsonx.Obj
       [
         ("plans", Jsonx.Int plans);
         ("mq_records", Jsonx.Int mq_records);
         ("reps", Jsonx.Int bench_reps);
         ("pool_workers", Jsonx.Int (Sched.workers (Sched.default ())));
         ("pooled_s", Jsonx.Float pooled);
         ("dedicated_s", Jsonx.Float dedicated);
         ("pooled_qps", Jsonx.Float (throughput pooled));
         ("dedicated_qps", Jsonx.Float (throughput dedicated));
         ("speedup", Jsonx.Float (dedicated /. pooled));
       ])

(* ------------------------------------------------------------------ *)
(* Regression gate: --check-mq BASELINE [--tolerance T]                 *)

(* Two conditions, both from the acceptance bar of the scheduler work:
   pooled makespan must stay within tolerance of the committed baseline,
   and pooled throughput must remain >= [min_speedup] x the dedicated
   baseline measured in the same run (so the comparison is same-host,
   same-load). *)
let min_speedup = 2.0

let check ~baseline ~tolerance =
  let doc =
    try Jsonx.read_file baseline
    with
    | Sys_error msg ->
        Printf.eprintf "cannot read baseline: %s\n" msg;
        exit 2
    | Jsonx.Parse_error msg ->
        Printf.eprintf "cannot parse baseline %s: %s\n" baseline msg;
        exit 2
  in
  let ( let* ) o f =
    match o with
    | Some v -> f v
    | None ->
        Printf.eprintf "baseline %s has no mq entry\n" baseline;
        exit 2
  in
  let* mq = Option.bind (Jsonx.member "experiments" doc) (Jsonx.member "mq") in
  let* base_plans = Option.bind (Jsonx.member "plans" mq) Jsonx.to_int_opt in
  let* base_records =
    Option.bind (Jsonx.member "mq_records" mq) Jsonx.to_int_opt
  in
  if base_plans <> plans || base_records <> mq_records then begin
    Printf.eprintf
      "baseline ran %d plans of %d records but this run uses %d of %d; set \
       VOLCANO_MQ_RECORDS to compare\n"
      base_plans base_records plans mq_records;
    exit 2
  end;
  let* base_pooled =
    Option.bind (Jsonx.member "pooled_s" mq) Jsonx.to_float_opt
  in
  header
    (Printf.sprintf
       "Concurrent-query check vs %s (min of %d bursts, tolerance %+.0f%%)"
       baseline bench_reps (tolerance *. 100.0));
  let ((pooled, dedicated) as pair) = measure_pair () in
  print_pair pair;
  let regressed = pooled > base_pooled *. (1.0 +. tolerance) in
  let speedup = dedicated /. pooled in
  let too_slow = speedup < min_speedup in
  row "\npooled makespan vs baseline: %.4f s -> %.4f s (%.2f)  %s\n"
    base_pooled pooled (pooled /. base_pooled)
    (if regressed then "REGRESSED"
     else if pooled < base_pooled then "improved"
     else "ok");
  row "pool-vs-dedicated speedup:   %.2fx (floor %.1fx)  %s\n" speedup
    min_speedup
    (if too_slow then "BELOW FLOOR" else "ok");
  (not regressed) && not too_slow
