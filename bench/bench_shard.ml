(* Sharded stored-table aggregation: does pushing the aggregate to the
   data beat shipping the data to the aggregate?

   The same Wisconsin relation, the same group-by-ten aggregate, two
   physical plans over real worker processes:

   - distributed: the table lives hash-partitioned across 3 worker
     sites; each site pre-aggregates its own partition and ships only
     the partial groups (at most [groups] rows per site), the parent
     combines;
   - scan-and-ship: one site holds the whole table and ships every raw
     row; the parent aggregates alone.

   The hard gate is bytes over the wire, read from the launcher's
   per-site obs counters: the distributed plan must ship strictly fewer
   bytes than the baseline — that is the whole point of partitioned
   storage, and it holds by construction (partials vs. the relation)
   whatever the host's timing noise.  Elapsed time is gated loosely
   against the committed baseline JSON. *)

open Bench_common
module Remote = Volcano_plan.Remote
module Partition = Volcano_plan.Partition
module Exchange = Volcano.Exchange
module Expr = Volcano_tuple.Expr
module Serial = Volcano_tuple.Serial
module Heap_file = Volcano_storage.Heap_file
module Agg = Volcano_ops.Aggregate
module W = Volcano_wisconsin.Wisconsin
module Launcher = Volcano_net.Launcher
module Obs = Volcano_obs.Obs

let shard_rows =
  match Sys.getenv_opt "VOLCANO_SHARD_ROWS" with
  | Some s -> int_of_string s
  | None -> 40_000

let parts = 3

let table = "wisc"

let spec = Partition.hash_spec [ W.column "unique1" ]

(* Site-side partial aggregate; also the parent's baseline shape. *)
let aggregate input =
  Plan.Aggregate
    {
      algo = Plan.Hash_based;
      group_by = [ W.column "ten" ];
      aggs = [ Agg.Count; Agg.Sum (Expr.Col (W.column "unique1")) ];
      input;
    }

(* --- worker side ------------------------------------------------------ *)

(* The bench binary re-executes itself in shard-worker mode (dispatched
   from [main.ml]).  Each site materializes only its own partitions from
   the shared deterministic generator. *)
let worker_main ~socket =
  Volcano_net.Worker.run ~socket ~resolve:(fun ~task ~shard ~shards ->
      let build ~rows ~parts plan =
        let env = fresh_env () in
        ignore
          (Partition.load_site env ~table ~schema:W.schema ~spec ~parts
             ~site:shard ~count:rows
             ~gen:(W.generator ~n:rows ()) ());
        Remote.shard_pull env ~shard ~shards plan
      in
      match String.split_on_char ':' task with
      | [ "agg"; rows; parts ] ->
          build ~rows:(int_of_string rows) ~parts:(int_of_string parts)
            (aggregate (Plan.Scan_table_slice table))
      | [ "ship"; rows ] ->
          build ~rows:(int_of_string rows) ~parts:1
            (Plan.Scan_table_slice table)
      | _ -> failwith ("unknown shard bench task " ^ task))

(* --- parent side ------------------------------------------------------ *)

let make_env ~rows ~parts =
  let env = fresh_env () in
  let file = Env.create_table env ~name:table ~schema:W.schema in
  let gen = W.generator ~n:rows () in
  for i = 0 to rows - 1 do
    ignore (Heap_file.insert file (Bytes.to_string (Serial.encode (gen i))))
  done;
  ignore (Partition.split env ~table ~spec ~parts ());
  env

let register ~obs env =
  Env.set_remote_launcher env (fun ~faults ~repartition:_ ~workers ~task
                                   ~packet_size ->
      (Launcher.launch ~faults ~obs
         ~command:(fun ~socket ->
           [| Sys.executable_name; "shard-worker"; socket |])
         ~workers ~task ~packet_size ())
        .Launcher.sources)

let remote ~workers ~task input =
  Plan.Remote
    { cfg = Exchange.config ~degree:workers (); workers; task; input }

let wire_bytes obs ~sites =
  let total = ref 0 in
  for site = 0 to sites - 1 do
    total :=
      !total
      + Obs.Counter.value
          (Obs.counter obs (Printf.sprintf "net.site%d.bytes" site))
  done;
  !total

type measured = {
  dist_s : float;
  ship_s : float;
  dist_bytes : int;
  ship_bytes : int;
  groups : int;
  results_equal : bool;
}

let measure () =
  let sorted rows = List.sort Tuple.compare rows in
  (* distributed: 3 sites pre-aggregate, parent combines the partials *)
  let dist_obs = Obs.create () in
  let dist_env = make_env ~rows:shard_rows ~parts in
  register ~obs:dist_obs dist_env;
  let dist_plan =
    Plan.Aggregate
      {
        algo = Plan.Hash_based;
        group_by = [ 0 ];
        aggs = [ Agg.Sum (Expr.Col 1); Agg.Sum (Expr.Col 2) ];
        input =
          remote ~workers:parts
            ~task:(Printf.sprintf "agg:%d:%d" shard_rows parts)
            (aggregate (Plan.Scan_table_slice table));
      }
  in
  (* one counted run for rows and wire traffic, then timed reps (the
     counters keep accumulating during reps; read before) *)
  let dist_rows = run_plan dist_env dist_plan in
  let dist_bytes = wire_bytes dist_obs ~sites:parts in
  let dist_s =
    min_of_reps (fun () ->
        snd (Clock.time (fun () -> ignore (run_plan dist_env dist_plan))))
  in
  (* scan-and-ship: one site ships the raw relation, parent aggregates *)
  let ship_obs = Obs.create () in
  let ship_env = make_env ~rows:shard_rows ~parts:1 in
  register ~obs:ship_obs ship_env;
  let ship_plan =
    aggregate
      (remote ~workers:1
         ~task:(Printf.sprintf "ship:%d" shard_rows)
         (Plan.Scan_table_slice table))
  in
  let ship_rows = run_plan ship_env ship_plan in
  let ship_bytes = wire_bytes ship_obs ~sites:1 in
  let ship_s =
    min_of_reps (fun () ->
        snd (Clock.time (fun () -> ignore (run_plan ship_env ship_plan))))
  in
  {
    dist_s;
    ship_s;
    dist_bytes;
    ship_bytes;
    groups = List.length dist_rows;
    results_equal = sorted dist_rows = sorted ship_rows;
  }

let print_measured m =
  row "%-28s %10s %14s\n" "" "elapsed(s)" "wire bytes";
  hline 56;
  row "%-28s %10.3f %14d\n"
    (Printf.sprintf "distributed (%d sites)" parts)
    m.dist_s m.dist_bytes;
  row "%-28s %10.3f %14d\n" "scan-and-ship (1 site)" m.ship_s m.ship_bytes;
  row "\nbytes ratio %.4fx, speedup %.2fx, %d groups%s\n"
    (float_of_int m.dist_bytes /. float_of_int m.ship_bytes)
    (m.ship_s /. m.dist_s) m.groups
    (if m.results_equal then "" else "  RESULTS DIVERGE")

let run () =
  header
    (Printf.sprintf
       "Sharded storage: pre-aggregated %d-site scan vs scan-and-ship, %d \
        rows"
       parts shard_rows);
  let m = measure () in
  print_measured m;
  json_add "shard"
    (Jsonx.Obj
       [
         ("rows", Jsonx.Int shard_rows);
         ("parts", Jsonx.Int parts);
         ("dist_s", Jsonx.Float m.dist_s);
         ("ship_s", Jsonx.Float m.ship_s);
         ("dist_bytes", Jsonx.Int m.dist_bytes);
         ("ship_bytes", Jsonx.Int m.ship_bytes);
         ("groups", Jsonx.Int m.groups);
       ])

(* ------------------------------------------------------------------ *)
(* Regression gate: --check-shard BASELINE [--tolerance T]              *)

(* Two hard floors independent of timing noise — the two plans must
   agree on the answer, and the distributed plan must ship strictly
   fewer bytes than scan-and-ship — plus a loose elapsed-time check
   against the committed baseline. *)
let check ~baseline ~tolerance =
  let doc =
    try Jsonx.read_file baseline
    with
    | Sys_error msg ->
        Printf.eprintf "cannot read baseline: %s\n" msg;
        exit 2
    | Jsonx.Parse_error msg ->
        Printf.eprintf "cannot parse baseline %s: %s\n" baseline msg;
        exit 2
  in
  let ( let* ) o f =
    match o with
    | Some v -> f v
    | None ->
        Printf.eprintf "baseline %s has no shard entry\n" baseline;
        exit 2
  in
  let* shard =
    Option.bind (Jsonx.member "experiments" doc) (Jsonx.member "shard")
  in
  let* base_rows = Option.bind (Jsonx.member "rows" shard) Jsonx.to_int_opt in
  if base_rows <> shard_rows then begin
    Printf.eprintf
      "baseline ran %d rows but this run uses %d; set VOLCANO_SHARD_ROWS to \
       compare\n"
      base_rows shard_rows;
    exit 2
  end;
  let* base_dist_s =
    Option.bind (Jsonx.member "dist_s" shard) Jsonx.to_float_opt
  in
  header
    (Printf.sprintf "Shard check vs %s (tolerance %+.0f%%)" baseline
       (tolerance *. 100.0));
  let m = measure () in
  print_measured m;
  let shipped_more = m.dist_bytes >= m.ship_bytes in
  let regressed = m.dist_s > base_dist_s *. (1.0 +. tolerance) in
  row "\nresults: %s\n" (if m.results_equal then "equal" else "DIVERGED");
  row "wire floor: %d < %d  %s\n" m.dist_bytes m.ship_bytes
    (if shipped_more then "VIOLATED (distributed shipped no fewer bytes)"
     else "ok");
  row "dist elapsed vs baseline: %.3f -> %.3f (%.2f)  %s\n" base_dist_s
    m.dist_s
    (m.dist_s /. base_dist_s)
    (if regressed then "REGRESSED" else "ok");
  m.results_equal && (not shipped_more) && not regressed
