(* Serving-plane load: hundreds of concurrent clients against one
   query-serving daemon over the framed Unix-socket protocol.

   The server runs in-process (the transport and thread-per-connection
   costs are identical to the CLI daemon's; only process isolation is
   elided) with its handler wired to a [Session], so every request pays
   real admission control and query execution.  Clients all connect
   first, then are released together; the gated statistics are aggregate
   QPS over the burst and client-observed p50/p99 latency — both read
   back out of the obs histogram registry the server and clients share. *)

open Bench_common
module Session = Volcano_plan.Session
module Serve = Volcano_net.Serve
module Obs = Volcano_obs.Obs

let clients =
  match Sys.getenv_opt "VOLCANO_SERVE_CLIENTS" with
  | Some s -> int_of_string s
  | None -> 500

let requests_per_client =
  match Sys.getenv_opt "VOLCANO_SERVE_REQUESTS" with
  | Some s -> int_of_string s
  | None -> 4

(* Small per-request row count: the serving plane (framing, threads,
   admission) is the thing under load, not the executor. *)
let serve_rows =
  match Sys.getenv_opt "VOLCANO_SERVE_ROWS" with
  | Some s -> int_of_string s
  | None -> 64

let total_requests = clients * requests_per_client

type measured = {
  elapsed : float;
  qps : float;
  p50_ms : float;
  p99_ms : float;
  client_failures : int;
  server_errors : int;
}

let measure () =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "volcano-bench-serve-%d.sock" (Unix.getpid ()))
  in
  let obs = Obs.create () in
  let latency = Obs.histogram obs "serve.client_latency_s" in
  Session.with_session ~frames:256 ~page_size:4096 ~max_concurrent:16
    (fun session ->
      let handle task =
        match int_of_string_opt task with
        | None -> Error ("serve", "bad task " ^ task)
        | Some n -> (
            match Session.exec session (`Plan (generate_slice n)) with
            | rows -> Ok rows
            | exception exn -> Error ("serve", Printexc.to_string exn))
      in
      let server = Serve.Server.start ~obs ~socket ~handle () in
      let failures = Atomic.make 0 in
      let released = Atomic.make false in
      let client conn =
        while not (Atomic.get released) do
          Thread.yield ()
        done;
        for _ = 1 to requests_per_client do
          let t0 = Obs.now () in
          (match Serve.Client.query conn (string_of_int serve_rows) with
          | Ok rows when List.length rows = serve_rows -> ()
          | Ok _ | Error _ -> Atomic.incr failures
          | exception _ -> Atomic.incr failures);
          Obs.Histogram.observe latency (Obs.now () -. t0)
        done;
        Serve.Client.close conn
      in
      (* Everyone connects before anyone sends: the daemon holds
         [clients] live connections for the whole burst. *)
      let conns = List.init clients (fun _ -> Serve.Client.connect ~socket) in
      let threads = List.map (fun c -> Thread.create client c) conns in
      let (), elapsed =
        Clock.time (fun () ->
            Atomic.set released true;
            List.iter Thread.join threads)
      in
      let server_errors = Serve.Server.errors server in
      Serve.Server.stop server;
      (try Sys.remove socket with _ -> ());
      {
        elapsed;
        qps = float_of_int total_requests /. elapsed;
        p50_ms = Obs.Histogram.percentile latency 0.5 *. 1e3;
        p99_ms = Obs.Histogram.percentile latency 0.99 *. 1e3;
        client_failures = Atomic.get failures;
        server_errors;
      })

let print_measured m =
  row "%-26s %10s %10s %10s %10s\n" "" "elapsed(s)" "qps" "p50(ms)" "p99(ms)";
  hline 70;
  row "%-26s %10.3f %10.1f %10.3f %10.3f\n"
    (Printf.sprintf "%d clients x %d reqs" clients requests_per_client)
    m.elapsed m.qps m.p50_ms m.p99_ms;
  if m.client_failures > 0 || m.server_errors > 0 then
    row "FAILURES: %d client, %d server\n" m.client_failures m.server_errors

let run () =
  header
    (Printf.sprintf
       "Query serving: %d concurrent clients, %d requests each, %d rows per \
        query"
       clients requests_per_client serve_rows);
  let m = measure () in
  print_measured m;
  json_add "serve"
    (Jsonx.Obj
       [
         ("clients", Jsonx.Int clients);
         ("requests_per_client", Jsonx.Int requests_per_client);
         ("serve_rows", Jsonx.Int serve_rows);
         ("total_requests", Jsonx.Int total_requests);
         ("elapsed_s", Jsonx.Float m.elapsed);
         ("qps", Jsonx.Float m.qps);
         ("p50_ms", Jsonx.Float m.p50_ms);
         ("p99_ms", Jsonx.Float m.p99_ms);
         ("client_failures", Jsonx.Int m.client_failures);
         ("server_errors", Jsonx.Int m.server_errors);
       ])

(* ------------------------------------------------------------------ *)
(* Regression gate: --check-serve BASELINE [--tolerance T]              *)

(* Three conditions: every request of the burst must succeed (the hard
   correctness floor — a daemon that sheds load under [clients]
   connections fails the gate outright), and throughput and median
   latency must stay within tolerance of the committed baseline. *)
let check ~baseline ~tolerance =
  let doc =
    try Jsonx.read_file baseline
    with
    | Sys_error msg ->
        Printf.eprintf "cannot read baseline: %s\n" msg;
        exit 2
    | Jsonx.Parse_error msg ->
        Printf.eprintf "cannot parse baseline %s: %s\n" baseline msg;
        exit 2
  in
  let ( let* ) o f =
    match o with
    | Some v -> f v
    | None ->
        Printf.eprintf "baseline %s has no serve entry\n" baseline;
        exit 2
  in
  let* serve =
    Option.bind (Jsonx.member "experiments" doc) (Jsonx.member "serve")
  in
  let* base_clients =
    Option.bind (Jsonx.member "clients" serve) Jsonx.to_int_opt
  in
  let* base_requests =
    Option.bind (Jsonx.member "requests_per_client" serve) Jsonx.to_int_opt
  in
  if base_clients <> clients || base_requests <> requests_per_client then begin
    Printf.eprintf
      "baseline drove %d clients x %d requests but this run uses %d x %d; set \
       VOLCANO_SERVE_CLIENTS / VOLCANO_SERVE_REQUESTS to compare\n"
      base_clients base_requests clients requests_per_client;
    exit 2
  end;
  let* base_qps = Option.bind (Jsonx.member "qps" serve) Jsonx.to_float_opt in
  let* base_p50 =
    Option.bind (Jsonx.member "p50_ms" serve) Jsonx.to_float_opt
  in
  header
    (Printf.sprintf "Serving check vs %s (tolerance %+.0f%%)" baseline
       (tolerance *. 100.0));
  let m = measure () in
  print_measured m;
  let dropped = m.client_failures > 0 || m.server_errors > 0 in
  let qps_regressed = m.qps < base_qps /. (1.0 +. tolerance) in
  let p50_regressed = m.p50_ms > base_p50 *. (1.0 +. tolerance) in
  row "\nrequests: %d/%d ok  %s\n"
    (total_requests - m.client_failures)
    total_requests
    (if dropped then "DROPPED LOAD" else "ok");
  row "qps vs baseline: %.1f -> %.1f (%.2f)  %s\n" base_qps m.qps
    (m.qps /. base_qps)
    (if qps_regressed then "REGRESSED"
     else if m.qps > base_qps then "improved"
     else "ok");
  row "p50 vs baseline: %.3f ms -> %.3f ms (%.2f)  %s\n" base_p50 m.p50_ms
    (m.p50_ms /. base_p50)
    (if p50_regressed then "REGRESSED" else "ok");
  (not dropped) && (not qps_regressed) && not p50_regressed
