(* Batch-size sweep: throughput of a fused scan→filter→project→aggregate
   chain as a function of the vectorization batch size, against the
   record-at-a-time execution of the identical plan (batch size 0).

   The fig2 analogy is deliberate: the paper's packet-size sweep shows the
   per-PACKET cost of crossing a process boundary being amortized; this
   sweep shows the per-RECORD cost of crossing an operator boundary
   (a virtual call per next) being amortized by the fused loop, entirely
   inside one process group.  The curve rises steeply over small sizes
   and flattens once per-record work dominates the per-batch overhead.

   The regression gate (--check-batch) additionally enforces the floor
   this PR is built around: the best batched point must clear 2x the
   record-at-a-time throughput. *)

open Bench_common
module Expr = Volcano_tuple.Expr
module Value = Volcano_tuple.Value
module Aggregate = Volcano_ops.Aggregate

let batch_sizes = [ 1; 2; 4; 8; 16; 32; 64; 128; 255 ]

(* The scan leaf reads records materialized once, outside the timed
   region — a [Generate] leaf would spend ~half of either path's time
   constructing the very same tuples per run, diluting the ratio the
   sweep exists to show.  Memoized so the gate's repeated sweeps share
   one table. *)
let scan_tuples : (int, Plan.t) Hashtbl.t = Hashtbl.create 4

let scan n =
  match Hashtbl.find_opt scan_tuples n with
  | Some plan -> plan
  | None ->
      let plan =
        Plan.Scan_list { arity = 4; tuples = List.init n four_int_tuple }
      in
      Hashtbl.add scan_tuples n plan;
      plan

(* Fused end to end: the chain compiles to one tight loop per batch and
   the hash aggregate consumes the chain's emit path directly.
   Selectivity ~50%, 64 groups — enough per-record work to be honest,
   little enough that the iterator protocol is the measurable cost. *)
let batch_plan n =
  Plan.Aggregate
    {
      algo = Plan.Hash_based;
      group_by = [ 0 ];
      aggs = [ Aggregate.Count; Aggregate.Sum (Expr.Col 1) ];
      input =
        Plan.Project_exprs
          {
            exprs =
              [
                Expr.Mod (Expr.Col 0, Expr.Const (Value.Int 64));
                Expr.Add (Expr.Col 0, Expr.Col 1);
              ];
            input =
              Plan.Filter
                {
                  pred =
                    Expr.Cmp
                      ( Expr.Lt,
                        Expr.Mod (Expr.Col 0, Expr.Const (Value.Int 10)),
                        Expr.Const (Value.Int 5) );
                  mode = `Compiled;
                  input = scan n;
                };
          };
    }

let measure_real n batch_size =
  min_of_reps (fun () ->
      let env = Env.create ~frames:256 ~page_size:4096 ~batch_size () in
      let groups, elapsed = time_count env (batch_plan n) in
      assert (groups = 64);
      elapsed)

(* Largest size first, ascending presentation — same reasoning as the
   fig2 sweep: the small-batch points generate the most short-lived
   garbage, and measuring them last keeps their marking debt from taxing
   the points the gate cares about. *)
let measure_sweep n sizes =
  List.rev_map (fun batch_size -> (batch_size, measure_real n batch_size))
    (List.rev sizes)

let records_per_s n elapsed = float_of_int n /. elapsed

let sweep () =
  let n = records in
  let baseline = measure_real n 0 in
  let data = measure_sweep n batch_sizes in
  (n, baseline, data)

let report (n, baseline, data) =
  header
    (Printf.sprintf
       "Batch-size sweep: fused scan-filter-project-aggregate, %d records \
        (batch 0 = record-at-a-time)"
       n);
  row "%8s %12s %16s %12s\n" "batch" "real (s)" "records/s" "vs batch 0";
  hline 52;
  let line batch real =
    row "%8d %12.4f %16.0f %11.2fx\n" batch real (records_per_s n real)
      (baseline /. real)
  in
  line 0 baseline;
  List.iter (fun (batch_size, real) -> line batch_size real) data;
  let best_size, best =
    List.fold_left
      (fun (bs, bt) (s, t) -> if t < bt then (s, t) else (bs, bt))
      (List.hd data) (List.tl data)
  in
  row "\nbest: batch %d at %.2fx the record-at-a-time throughput\n" best_size
    (baseline /. best);
  (best_size, best)

let json_of (n, baseline, data) (best_size, best) =
  Jsonx.Obj
    [
      ("records", Jsonx.Int n);
      ("reps", Jsonx.Int bench_reps);
      ("record_at_a_time_s", Jsonx.Float baseline);
      ( "series",
        Jsonx.List
          (List.map
             (fun (batch_size, real) ->
               Jsonx.Obj
                 [
                   ("batch_size", Jsonx.Int batch_size);
                   ("real_s", Jsonx.Float real);
                   ("records_per_s", Jsonx.Float (records_per_s n real));
                   ("speedup", Jsonx.Float (baseline /. real));
                 ])
             data) );
      ("best_batch_size", Jsonx.Int best_size);
      ("best_speedup", Jsonx.Float (baseline /. best));
    ]

let run () =
  let ((_, _, _) as r) = sweep () in
  let best = report r in
  json_add "batch" (json_of r best)

(* ------------------------------------------------------------------ *)
(* Regression gate: --check-batch BASELINE [--tolerance T]             *)

(* Two obligations: no per-point wall-time regression beyond the
   tolerance (plus an absolute noise floor — the fast points are
   single-digit milliseconds on this host), and the structural floor
   that vectorization exists to provide: best batched throughput at
   least [required_speedup] times the record-at-a-time run, measured
   fresh on this host rather than read from the file. *)
let noise_floor_s = 0.003
let required_speedup = 2.0

let check ~baseline ~tolerance =
  let doc =
    try Jsonx.read_file baseline
    with
    | Sys_error msg ->
        Printf.eprintf "cannot read baseline: %s\n" msg;
        exit 2
    | Jsonx.Parse_error msg ->
        Printf.eprintf "cannot parse baseline %s: %s\n" baseline msg;
        exit 2
  in
  let ( let* ) o f =
    match o with
    | Some v -> f v
    | None ->
        Printf.eprintf "baseline %s has no batch series\n" baseline;
        exit 2
  in
  let* batch_doc =
    Option.bind (Jsonx.member "experiments" doc) (Jsonx.member "batch")
  in
  let* base_n = Option.bind (Jsonx.member "records" batch_doc) Jsonx.to_int_opt in
  if base_n <> records then begin
    Printf.eprintf
      "baseline used %d records but this run uses %d; set VOLCANO_RECORDS=%d \
       to compare\n"
      base_n records base_n;
    exit 2
  end;
  let* series =
    Option.bind (Jsonx.member "series" batch_doc) Jsonx.to_list_opt
  in
  let targets =
    List.map
      (fun entry ->
        let* batch_size =
          Option.bind (Jsonx.member "batch_size" entry) Jsonx.to_int_opt
        in
        let* base =
          Option.bind (Jsonx.member "real_s" entry) Jsonx.to_float_opt
        in
        (batch_size, base))
      series
  in
  header
    (Printf.sprintf
       "Batch regression check vs %s (min of %d runs, tolerance %+.0f%% + %.0f \
        ms, floor %.1fx)"
       baseline bench_reps (tolerance *. 100.0) (noise_floor_s *. 1e3)
       required_speedup);
  let now_baseline = measure_real records 0 in
  let now_by_size = measure_sweep records (List.map fst targets) in
  row "%8s %14s %14s %9s  %s\n" "batch" "baseline (s)" "now (s)" "ratio"
    "verdict";
  hline 58;
  let regressions =
    List.filter_map
      (fun (batch_size, base) ->
        let now = List.assoc batch_size now_by_size in
        let ratio = now /. base in
        let regressed = now > (base *. (1.0 +. tolerance)) +. noise_floor_s in
        row "%8d %14.4f %14.4f %9.2f  %s\n" batch_size base now ratio
          (if regressed then "REGRESSED"
           else if ratio < 1.0 then "improved"
           else "ok");
        if regressed then Some batch_size else None)
      targets
  in
  let best_size, best =
    List.fold_left
      (fun (bs, bt) (s, t) -> if t < bt then (s, t) else (bs, bt))
      (List.hd now_by_size) (List.tl now_by_size)
  in
  let speedup = now_baseline /. best in
  row
    "\nrecord-at-a-time %.4fs; best batched (size %d) %.4fs — %.2fx (floor \
     %.1fx)\n"
    now_baseline best_size best speedup required_speedup;
  let floor_ok = speedup >= required_speedup in
  if not floor_ok then
    row "FAILED: vectorization no longer clears its %.1fx throughput floor\n"
      required_speedup;
  (match regressions with
  | [] -> row "no regressions: all %d points within tolerance\n"
            (List.length targets)
  | r ->
      row "%d of %d points regressed beyond %+.0f%%\n" (List.length r)
        (List.length targets) (tolerance *. 100.0));
  floor_ok && regressions = []
